// Package erruse is the want-fixture for the dropped-error analyzer.
package erruse

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
)

func fails() error            { return errors.New("boom") }
func failsWith() (int, error) { return 0, errors.New("boom") }
func succeeds() int           { return 1 }
func use(args ...interface{}) {}

type closer struct{}

func (closer) Close() error { return nil }

func discards() {
	fails()       // want "error result of .*erruse.fails is discarded"
	failsWith()   // want "error result of .*erruse.failsWith is discarded"
	succeeds()    // no error in the results: no finding
	defer fails() // want "error result of .*erruse.fails is discarded by defer"
	go fails()    // want "error result of .*erruse.fails is discarded by go"
	var c closer
	defer c.Close() // want "error result of .*erruse.closer..Close is discarded by defer"

	// Explicit blank assignment is a reviewed opt-out.
	_ = fails()
	n, _ := failsWith()
	use(n)

	// Best-effort printers and never-failing writers are exempt.
	fmt.Println("hello")
	fmt.Fprintf(os.Stderr, "oops\n")
	var sb strings.Builder
	sb.WriteString("x")
	var buf bytes.Buffer
	buf.WriteByte('x')
}

func shadows() error {
	n, err := failsWith()
	use(n)
	if err != nil {
		return err
	}
	// Checked above: re-deriving err in a new scope is fine.
	if err := fails(); err != nil {
		return err
	}

	m, err2 := failsWith()
	use(m)
	if err2 := fails(); err2 != nil { // want "err2 shadows an unchecked error from .*erruse.go"
		return err2
	}
	if err2 != nil { // the stale read: err2 still holds failsWith's error
		return err2
	}
	return nil
}

func noStaleRead() (err error) {
	err = fails()
	// The outer err is never explicitly consulted after the shadow (the
	// naked return is implicit), so the stale-read condition keeps this
	// return-shadowing idiom quiet: no finding.
	if err := fails(); err != nil {
		use(err)
	}
	return
}
