package erruse_test

import (
	"testing"

	"imflow/internal/analysis/analyzertest"
	"imflow/internal/analysis/erruse"
)

func TestErruseFixture(t *testing.T) {
	diags := analyzertest.Run(t, erruse.Analyzer, "testdata/erruse")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; the analyzer is disarmed")
	}
}
