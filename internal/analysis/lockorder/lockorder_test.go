package lockorder_test

import (
	"strings"
	"testing"

	"imflow/internal/analysis/analyzertest"
	"imflow/internal/analysis/callgraph"
	"imflow/internal/analysis/lockorder"
)

// TestSeededDeadlocks proves the three seeded shapes are each caught with
// their witnesses: an intraprocedural inversion (both acquire sites
// named), an interprocedural inversion (the call chain printed), and a
// reentrant acquire.
func TestSeededDeadlocks(t *testing.T) {
	diags := analyzertest.RunModule(t, []*callgraph.Analyzer{lockorder.Analyzer}, "testdata/deadlock")
	if len(diags) != 3 {
		t.Fatalf("deadlock fixture produced %d diagnostics, want 3:\n%v", len(diags), diags)
	}
	// The interprocedural witness must print the chain through helper.
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "(via deadlock.(T).helper)") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no diagnostic names the interprocedural chain via helper:\n%v", diags)
	}
}

// TestConsistentOrderIsSilent proves a single global order, sequential
// acquisitions, and read-read reentrancy produce no findings.
func TestConsistentOrderIsSilent(t *testing.T) {
	analyzertest.RunModule(t, []*callgraph.Analyzer{lockorder.Analyzer}, "testdata/ordered")
}
