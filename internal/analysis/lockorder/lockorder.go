// Package lockorder implements the module-level analyzer that derives a
// lock-acquisition-order graph and reports cycles as potential deadlocks.
//
// Two goroutines that acquire the same two mutexes in opposite orders can
// deadlock; the classic prevention discipline is a global acquisition
// order. The analyzer reconstructs the observed order mechanically:
//
//   - every sync.Mutex/RWMutex Lock/RLock call is an acquisition of the
//     lock *object* it resolves to (a struct field such as serve.Server's
//     mu, a package-level or local variable, or an embedded mutex);
//   - acquiring B while A is held adds the order edge A → B;
//   - calling a function while holding A adds A → X for every lock X the
//     callee acquires *transitively* (a fixed point over the call graph,
//     so the serve → retrieval → maxflow chains are covered);
//   - a cycle in the resulting graph — including the self-cycle of
//     reacquiring a held, non-RLock mutex — is reported once, with a
//     witness (function, position, and call chain) for every edge on it.
//
// Like lockguard, the held-set tracking is a straight-line approximation:
// it follows source order, treats a deferred Unlock as holding to return,
// and gives function literals a fresh (empty) held set because their
// execution time is unknown. Goroutine spawns and escaping function
// values contribute no order edges — a spawned body runs concurrently,
// so its acquisitions are not "while held". `go test -race` remains the
// dynamic backstop; this analyzer exists to catch inverted orders on
// paths the tests never interleave.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"imflow/internal/analysis/callgraph"
)

// Analyzer is the lockorder module analyzer.
var Analyzer = &callgraph.Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition order must be acyclic across all call chains (cycles are potential deadlocks)",
	Run:  run,
}

// held is one lock currently held during the straight-line walk.
type held struct {
	obj types.Object
	op  string // "Lock" or "RLock"
}

// orderEdge is one observed A-before-B acquisition, with its witness.
type orderEdge struct {
	from, to types.Object
	fromOp   string
	toOp     string
	node     *callgraph.Node // function the witness position lives in
	pos      token.Pos       // acquire or call position
	chain    string          // non-empty for interprocedural edges
}

// funcLocks is one function's lock fact summary.
type funcLocks struct {
	// direct maps each lock acquired in the body to the strongest op
	// ("Lock" beats "RLock") and one acquire position.
	direct map[types.Object]directAcq
	// edges are the intraprocedural order edges.
	edges []orderEdge
	// calls records every resolved call with at least one lock held.
	calls []heldCall
}

type directAcq struct {
	op  string
	pos token.Pos
}

type heldCall struct {
	callee *callgraph.Node
	pos    token.Pos
	held   []held
}

func run(pass *callgraph.Pass) error {
	g := pass.Graph
	labels := lockLabels(g)
	facts := map[*callgraph.Node]*funcLocks{}
	for _, n := range g.Nodes {
		facts[n] = summarize(n)
	}

	// Transitive acquisitions: fixed point of
	// trans(f) = direct(f) ∪ ⋃ trans(callee) over call/dispatch edges.
	trans := map[*callgraph.Node]map[types.Object]directAcq{}
	for n, f := range facts {
		m := map[types.Object]directAcq{}
		for obj, a := range f.direct {
			m[obj] = a
		}
		trans[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				if !followable(e) {
					continue
				}
				for obj, a := range trans[e.Callee] {
					if cur, ok := trans[n][obj]; !ok || (cur.op == "RLock" && a.op == "Lock") {
						trans[n][obj] = a
						changed = true
					}
				}
			}
		}
	}

	// Assemble the order graph: intraprocedural edges plus, for every
	// call made with locks held, edges to everything the callee
	// transitively acquires.
	var edges []orderEdge
	for _, n := range g.SortedNodes() {
		f := facts[n]
		edges = append(edges, f.edges...)
		for _, c := range f.calls {
			for obj, a := range trans[c.callee] {
				for _, h := range c.held {
					edges = append(edges, orderEdge{
						from: h.obj, fromOp: h.op,
						to: obj, toOp: a.op,
						node: n, pos: c.pos,
						chain: witnessChain(g, c.callee, obj, a),
					})
				}
			}
		}
	}

	report(pass, edges, labels)
	return nil
}

func followable(e callgraph.Edge) bool {
	return (e.Kind == callgraph.EdgeCall || e.Kind == callgraph.EdgeDispatch) && e.Callee != nil
}

// witnessChain renders the shortest call path from callee to the
// function that directly acquires obj.
func witnessChain(g *callgraph.Graph, callee *callgraph.Node, obj types.Object, a directAcq) string {
	path := g.PathTo(callee,
		func(n *callgraph.Node) bool {
			// trans includes direct acquires; stop at a direct acquirer.
			_, ok := nodeDirect(g, n, obj)
			return ok
		},
		followable)
	if path == nil {
		return callee.Name()
	}
	if len(path) == 0 {
		return callee.Name()
	}
	return callgraph.FormatPath(path)
}

// nodeDirect reports whether n itself acquires obj (recomputed lazily —
// cheap relative to graph size, and keeps witnessChain self-contained).
func nodeDirect(g *callgraph.Graph, n *callgraph.Node, obj types.Object) (directAcq, bool) {
	f := summarize(n)
	a, ok := f.direct[obj]
	return a, ok
}

// summarize walks one function body in source order, tracking the held
// set exactly like lockguard does (deferred Unlocks hold to return), and
// produces its lock fact summary. Function literal bodies are walked with
// a fresh held set.
func summarize(n *callgraph.Node) *funcLocks {
	f := &funcLocks{direct: map[types.Object]directAcq{}}
	if n.Decl == nil || n.Decl.Body == nil {
		return f
	}
	// callEdges indexes the node's resolved outgoing edges by call
	// position, so the walk can attach held sets to callees.
	callEdges := map[token.Pos][]*callgraph.Node{}
	for _, e := range n.Out {
		if followable(e) {
			callEdges[e.Pos] = append(callEdges[e.Pos], e.Callee)
		}
	}
	walkLocks(n, n.Decl.Body, nil, callEdges, f)
	return f
}

// walkLocks processes one body (function or literal) with its own held
// stack, appending facts to f.
func walkLocks(n *callgraph.Node, body *ast.BlockStmt, stack []held, callEdges map[token.Pos][]*callgraph.Node, f *funcLocks) {
	var nodes []ast.Node
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			nodes = nodes[:len(nodes)-1]
			return true
		}
		nodes = append(nodes, x)
		switch x := x.(type) {
		case *ast.FuncLit:
			// Unknown execution time: fresh held set, then skip in this
			// walk (Inspect sends no closing nil after false).
			walkLocks(n, x.Body, nil, callEdges, f)
			nodes = nodes[:len(nodes)-1]
			return false
		case *ast.CallExpr:
			obj, op := lockOp(n.Pkg.Info, x)
			if obj != nil {
				switch op {
				case "Lock", "RLock":
					for _, h := range stack {
						f.edges = append(f.edges, orderEdge{
							from: h.obj, fromOp: h.op,
							to: obj, toOp: op,
							node: n, pos: x.Pos(),
						})
					}
					stack = append(stack, held{obj: obj, op: op})
					if cur, ok := f.direct[obj]; !ok || (cur.op == "RLock" && op == "Lock") {
						f.direct[obj] = directAcq{op: op, pos: x.Pos()}
					}
				case "Unlock", "RUnlock":
					// A deferred Unlock releases at return, after every
					// acquisition in the body: it stays held for the walk.
					if _, isDefer := parentNode(nodes, 1).(*ast.DeferStmt); !isDefer {
						stack = release(stack, obj)
					}
				}
				return true
			}
			if callees := callEdges[x.Pos()]; len(callees) > 0 && len(stack) > 0 {
				heldCopy := append([]held{}, stack...)
				for _, callee := range callees {
					f.calls = append(f.calls, heldCall{callee: callee, pos: x.Pos(), held: heldCopy})
				}
			}
		}
		return true
	})
}

func parentNode(stack []ast.Node, up int) ast.Node {
	i := len(stack) - 1 - up
	if i < 0 {
		return nil
	}
	return stack[i]
}

// release removes the most recent held entry for obj.
func release(stack []held, obj types.Object) []held {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].obj == obj {
			return append(stack[:i:i], stack[i+1:]...)
		}
	}
	return stack
}

// lockOp decodes a call of the shape <lock>.Lock/RLock/Unlock/RUnlock()
// where the method belongs to package sync, resolving the lock to the
// variable or field object it lives in (embedded mutexes resolve to the
// embedded field). obj is nil when the call is not a lock operation.
func lockOp(info *types.Info, call *ast.CallExpr) (obj types.Object, op string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return nil, ""
	}
	m, ok := selection.Obj().(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return nil, ""
	}
	op = sel.Sel.Name
	// Promoted method (s.Lock() through an embedded mutex): the lock is
	// the last field on the selection's index path.
	if idx := selection.Index(); len(idx) > 1 {
		t := selection.Recv()
		var fieldObj types.Object
		for _, i := range idx[:len(idx)-1] {
			if p, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
				t = p.Elem()
			}
			st, isStruct := t.Underlying().(*types.Struct)
			if !isStruct || i >= st.NumFields() {
				return nil, ""
			}
			fld := st.Field(i)
			fieldObj = fld
			t = fld.Type()
		}
		return fieldObj, op
	}
	return lockBase(info, sel.X), op
}

// lockBase resolves the expression the lock method was selected from to
// its variable or field object.
func lockBase(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
		// Qualified package-level variable pkg.Mu.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return lockBase(info, e.X)
		}
	}
	return nil
}

// lockLabels maps every struct field in the loaded packages to a stable
// human label "pkg.(Type).field"; other lock objects fall back to
// "pkg.name".
func lockLabels(g *callgraph.Graph) map[types.Object]string {
	labels := map[types.Object]string{}
	for _, pkg := range g.Pkgs {
		base := pkg.Types.Name()
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				labels[st.Field(i)] = base + ".(" + tn.Name() + ")." + st.Field(i).Name()
			}
		}
	}
	return labels
}

func label(labels map[types.Object]string, obj types.Object) string {
	if l, ok := labels[obj]; ok {
		return l
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

// report finds cycles in the order graph and emits one diagnostic per
// cycle with every edge's witness.
func report(pass *callgraph.Pass, edges []orderEdge, labels map[types.Object]string) {
	// Keep one witness per directed pair, preferring intraprocedural
	// witnesses (no chain) and earliest position for determinism.
	type pair struct{ from, to types.Object }
	best := map[pair]orderEdge{}
	adj := map[types.Object]map[types.Object]bool{}
	for _, e := range edges {
		if e.from == e.to {
			// Self-cycle: reacquiring a held lock. A read-read pair is
			// the one benign shape (still reported by -race under writer
			// pressure, but not an order inversion).
			if e.fromOp == "RLock" && e.toOp == "RLock" {
				continue
			}
			pass.Reportf(e.node, e.pos, "lock %s is reacquired while already held (self-deadlock)%s",
				label(labels, e.from), chainSuffix(e))
			continue
		}
		p := pair{e.from, e.to}
		if cur, ok := best[p]; !ok || betterWitness(e, cur) {
			best[p] = e
		}
		if adj[e.from] == nil {
			adj[e.from] = map[types.Object]bool{}
		}
		adj[e.from][e.to] = true
	}

	for _, cycle := range findCycles(adj, labels) {
		var parts []string
		for i := range cycle {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			e := best[pair{from, to}]
			pos := e.node.Pkg.Fset.Position(e.pos)
			parts = append(parts, fmt.Sprintf("%s → %s in %s at %s%s",
				label(labels, from), label(labels, to), e.node.Name(), pos, chainSuffix(e)))
		}
		first := best[pair{cycle[0], cycle[1%len(cycle)]}]
		pass.Reportf(first.node, first.pos,
			"lock-order cycle (potential deadlock): %s", strings.Join(parts, "; "))
	}
}

func chainSuffix(e orderEdge) string {
	if e.chain == "" {
		return ""
	}
	return " (via " + e.chain + ")"
}

func betterWitness(a, b orderEdge) bool {
	if (a.chain == "") != (b.chain == "") {
		return a.chain == ""
	}
	return a.pos < b.pos
}

// findCycles returns every elementary cycle reachable through the
// strongly connected components of the order graph, each rotated to its
// smallest label and deduplicated, in deterministic order. Within one
// SCC, one representative cycle per back edge is reported — enough to
// name every inversion without enumerating the exponential cycle space.
func findCycles(adj map[types.Object]map[types.Object]bool, labels map[types.Object]string) [][]types.Object {
	// Deterministic node order.
	var nodes []types.Object
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return label(labels, nodes[i]) < label(labels, nodes[j]) })

	var cycles [][]types.Object
	seen := map[string]bool{}
	for _, start := range nodes {
		// DFS from start looking for a path back to start.
		var path []types.Object
		onPath := map[types.Object]bool{}
		var dfs func(n types.Object) bool
		dfs = func(n types.Object) bool {
			path = append(path, n)
			onPath[n] = true
			var nexts []types.Object
			for m := range adj[n] {
				nexts = append(nexts, m)
			}
			sort.Slice(nexts, func(i, j int) bool { return label(labels, nexts[i]) < label(labels, nexts[j]) })
			for _, m := range nexts {
				if m == start && len(path) > 1 {
					cyc := append([]types.Object{}, path...)
					key := cycleKey(cyc, labels)
					if !seen[key] {
						seen[key] = true
						cycles = append(cycles, cyc)
					}
					return true
				}
				if !onPath[m] && label(labels, m) > label(labels, start) {
					// Only explore nodes "larger" than start so each
					// cycle is found once, rooted at its smallest label.
					if dfs(m) {
						return true
					}
				}
			}
			path = path[:len(path)-1]
			delete(onPath, n)
			return false
		}
		dfs(start)
	}
	return cycles
}

func cycleKey(cycle []types.Object, labels map[types.Object]string) string {
	parts := make([]string, len(cycle))
	for i, n := range cycle {
		parts[i] = label(labels, n)
	}
	return strings.Join(parts, "→")
}
