// Package ordered is the lockorder clean fixture: one global acquisition
// order (embedded mutex before b), sequential non-nested acquires, and
// read-read reentrancy — none of which is a deadlock.
package ordered

import "sync"

type S struct {
	sync.Mutex // embedded: promoted Lock calls resolve to this field
	b          sync.Mutex
}

func (s *S) nested() {
	s.Lock()
	defer s.Unlock()
	s.b.Lock()
	s.b.Unlock()
}

func (s *S) nestedAgain() {
	s.Lock()
	s.b.Lock()
	s.b.Unlock()
	s.Unlock()
}

// sequential releases the inner lock before taking the outer one in the
// reverse order: no overlap, no edge, no cycle.
func (s *S) sequential() {
	s.b.Lock()
	s.b.Unlock()
	s.Lock()
	s.Unlock()
}

type R struct {
	mu sync.RWMutex
}

// readTwice holds a read lock across a helper that takes another read
// lock: benign, and exempt from the self-deadlock rule.
func (r *R) readTwice() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.readHelper()
}

func (r *R) readHelper() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return 1
}
