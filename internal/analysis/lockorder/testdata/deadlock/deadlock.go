// Package deadlock is the lockorder golden fixture: two locks acquired in
// opposite orders (intraprocedurally and through a call chain) and a
// reentrant acquire, each a seeded deadlock the analyzer must name with
// its witnesses.
package deadlock

import "sync"

type S struct {
	a sync.Mutex
	b sync.Mutex
}

// abPath nests b inside a; baPath nests a inside b. Together they form
// the classic inversion, reported once at the cycle's first witness.
func (s *S) abPath() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want "lock-order cycle \(potential deadlock\): deadlock.\(S\).a → deadlock.\(S\).b in deadlock.\(S\).abPath at .*deadlock.go:\d+:\d+; deadlock.\(S\).b → deadlock.\(S\).a in deadlock.\(S\).baPath at .*deadlock.go:\d+:\d+"
	s.b.Unlock()
}

func (s *S) baPath() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock()
	s.a.Unlock()
}

type T struct {
	m1 sync.Mutex
	m2 sync.Mutex
}

// lockFirst acquires m2 only transitively, through helper: the inversion
// against reversed is interprocedural and the witness names the chain.
func (t *T) lockFirst() {
	t.m1.Lock()
	defer t.m1.Unlock()
	t.helper() // want "lock-order cycle \(potential deadlock\): deadlock.\(T\).m1 → deadlock.\(T\).m2 in deadlock.\(T\).lockFirst at .*deadlock.go:\d+:\d+ \(via deadlock.\(T\).helper\); deadlock.\(T\).m2 → deadlock.\(T\).m1 in deadlock.\(T\).reversed at .*deadlock.go:\d+:\d+"
}

func (t *T) helper() {
	t.m2.Lock()
	t.m2.Unlock()
}

func (t *T) reversed() {
	t.m2.Lock()
	defer t.m2.Unlock()
	t.m1.Lock()
	t.m1.Unlock()
}

type R struct {
	mu sync.Mutex
}

// reenter calls a method that reacquires the mutex it already holds:
// sync.Mutex is not reentrant, so this parks forever.
func (r *R) reenter() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.again() // want "lock deadlock.\(R\).mu is reacquired while already held \(self-deadlock\) \(via deadlock.\(R\).again\)"
}

func (r *R) again() {
	r.mu.Lock()
	r.mu.Unlock()
}
