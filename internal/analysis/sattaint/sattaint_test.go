package sattaint_test

import (
	"testing"

	"imflow/internal/analysis/analyzertest"
	"imflow/internal/analysis/sattaint"
)

func TestSattaintFixture(t *testing.T) {
	diags := analyzertest.Run(t, sattaint.Analyzer, "testdata/sattaint")
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics; the analyzer is disarmed")
	}
}
