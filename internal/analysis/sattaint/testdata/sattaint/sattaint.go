// Package sattaint is the want-fixture for the flow-sensitive Micros
// taint analyzer.
package sattaint

import (
	"time"

	"imflow/internal/cost"
)

type stats struct {
	total int64 // tainted via record()
	count int64
}

// record launders a Micros into the stats total.
func record(s *stats, m cost.Micros) {
	s.total += int64(m) // want "raw \+= on a cost.Micros-derived value can wrap"
	s.count++           // count is never Micros-derived: no finding
}

// launder returns a Micros-derived int64; callers' arithmetic on it is
// flagged through the result summary.
func launder(m cost.Micros) int64 {
	return int64(m)
}

func flows(m cost.Micros, plain int64) {
	d := int64(m)
	sum := d + plain // want "raw \+ on a cost.Micros-derived value can wrap"
	_ = sum

	// Micros-typed operands are satarith's domain, not repeated here.
	var mm cost.Micros = m + 1 // satarith's finding, not sattaint's: no want here
	_ = mm

	// Named int64-underlying types carry the taint.
	dur := time.Duration(m)
	dur *= 2 // want "raw \*= on a cost.Micros-derived value can wrap"

	// Division and comparisons cannot wrap: exempt, mirroring satarith.
	half := d / 2
	_ = half
	if d > plain {
		_ = d
	}

	// Constant expressions are the compiler's problem.
	const k = int64(cost.Max) / 4
	_ = k + k

	// Result summaries taint call sites.
	viaCall := launder(m) - 5 // want "raw - on a cost.Micros-derived value can wrap"
	_ = viaCall

	// Struct-field taint flows out of record's writes.
	var s stats
	record(&s, m)
	s.total++ // want "raw \+\+ on a cost.Micros-derived value can wrap"
	s.count-- // untainted field: no finding

	// Untainted arithmetic stays silent.
	plain2 := plain * 3
	_ = plain2
}
