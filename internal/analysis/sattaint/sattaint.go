// Package sattaint implements the flow-sensitive upgrade of satarith.
//
// satarith's rule is syntactic: raw `+`/`-`/`*` with a cost.Micros
// operand must go through the cost.Sat* helpers. That leaves a hole the
// size of one conversion — `int64(m) + x` or `time.Duration(m) * 1000`
// launders the Micros value into a plain int64-underlying type whose
// arithmetic wraps silently, defeating the clamp-at-cost.Max discipline
// the conversion's source was protected by (a Micros clamped at Max and
// then multiplied wraps negative and compares as "earlier than
// everything", the exact failure mode DESIGN.md §2 exists to prevent).
//
// sattaint closes the hole with the dataflow engine: any conversion of a
// cost.Micros value to a non-Micros type whose underlying type is int64
// is a taint source, the taint propagates through assignments, struct
// fields, containers, and intra-package calls/returns, and raw `+`, `-`,
// `*` (plus the compound and ++/-- forms) on a tainted value is
// reported. The division/shift/comparison and constant-folding
// exemptions mirror satarith, as does the cost-package exemption; sites
// where either operand is Micros itself are satarith's findings, not
// repeated here. Cross-package flows are not tracked (the engine's
// documented caveat), so a Micros laundered through an exported helper's
// int64 result in another package is invisible — keep such helpers
// returning Micros.
//
// Provably in-range arithmetic opts out per line with a reasoned
// `//lint:ignore sattaint <why>`.
package sattaint

import (
	"go/ast"
	"go/token"
	"go/types"

	"imflow/internal/analysis"
	"imflow/internal/analysis/dataflow"
)

// costPath is the package allowed to do raw arithmetic on its own
// representation.
const costPath = "imflow/internal/cost"

// helper maps a flagged operator to the suggested saturating replacement.
var helper = map[token.Token]string{
	token.ADD:        "cost.SatAdd",
	token.SUB:        "cost.SatSub",
	token.MUL:        "cost.SatMul",
	token.ADD_ASSIGN: "cost.SatAdd",
	token.SUB_ASSIGN: "cost.SatSub",
	token.MUL_ASSIGN: "cost.SatMul",
	token.INC:        "cost.SatAdd",
	token.DEC:        "cost.SatSub",
}

// Analyzer is the sattaint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sattaint",
	Doc:  "raw +/-/* on a cost.Micros-derived int64 wraps on overflow; keep the value in cost.Micros and use the Sat* helpers",
	Run:  run,
}

// Config is the taint configuration sattaint runs the dataflow engine
// with: sources are conversions of Micros values to int64-underlying
// non-Micros types, and any such type carries.
func Config() dataflow.Config {
	return dataflow.Config{
		Source: isLaunderingConversion,
		Carries: func(t types.Type) bool {
			return isInt64Underlying(t) && !isMicros(t)
		},
	}
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == costPath {
		return nil
	}
	taint := dataflow.Run(&analysis.Package{
		ImportPath: pass.Pkg.Path(),
		Fset:       pass.Fset,
		Files:      pass.Files,
		Types:      pass.Pkg,
		Info:       pass.Info,
	}, Config())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				name, flagged := helper[n.Op]
				if !flagged {
					return true
				}
				// Micros-typed operands are satarith's findings.
				if isMicros(pass.TypeOf(n.X)) || isMicros(pass.TypeOf(n.Y)) {
					return true
				}
				if tv, ok := pass.Info.Types[n]; ok && tv.Value != nil {
					return true // constant-folded: the compiler checks overflow
				}
				if taint.Tainted(n.X) || taint.Tainted(n.Y) {
					pass.Reportf(n.OpPos, "raw %s on a cost.Micros-derived value can wrap; do the arithmetic in cost.Micros with %s", n.Op, name)
				}
			case *ast.AssignStmt:
				name, flagged := helper[n.Tok]
				if !flagged || len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				if isMicros(pass.TypeOf(n.Lhs[0])) {
					return true
				}
				if taint.LValueTainted(n.Lhs[0]) || taint.Tainted(n.Rhs[0]) {
					pass.Reportf(n.TokPos, "raw %s on a cost.Micros-derived value can wrap; do the arithmetic in cost.Micros with %s", n.Tok, name)
				}
			case *ast.IncDecStmt:
				if isMicros(pass.TypeOf(n.X)) {
					return true
				}
				if taint.LValueTainted(n.X) {
					pass.Reportf(n.TokPos, "raw %s on a cost.Micros-derived value can wrap; do the arithmetic in cost.Micros with %s", n.Tok, helper[n.Tok])
				}
			}
			return true
		})
	}
	return nil
}

// isLaunderingConversion reports whether e converts a cost.Micros value
// into a non-Micros int64-underlying type — the taint source.
func isLaunderingConversion(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	if !isInt64Underlying(tv.Type) || isMicros(tv.Type) {
		return false
	}
	argT, ok := info.Types[call.Args[0]]
	return ok && isMicros(argT.Type)
}

func isInt64Underlying(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// isMicros reports whether t is (an alias of) cost.Micros.
func isMicros(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Micros" && obj.Pkg() != nil && obj.Pkg().Path() == costPath
}
