package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
)

// Record is the machine-readable form of one finding, the unit of the
// driver's -json output. CI uploads the record stream as an artifact and
// editor integrations consume it, so the encoding is append-only: fields
// may be added, never renamed or reordered.
type Record struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppressed marks findings silenced by a //lint:ignore comment;
	// they are reported for auditability but do not fail the run.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// Records converts active and suppressed findings into one stably sorted
// record slice. File paths are rewritten relative to root (when possible)
// so the output is identical across checkouts.
func Records(root string, active []Diagnostic, suppressed []Suppressed) []Record {
	out := make([]Record, 0, len(active)+len(suppressed))
	for _, d := range active {
		out = append(out, record(root, d, ""))
	}
	for _, s := range suppressed {
		out = append(out, record(root, s.Diagnostic, s.Reason))
	}
	sortRecords(out)
	return out
}

func record(root string, d Diagnostic, reason string) Record {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
			file = filepath.ToSlash(rel)
		}
	}
	return Record{
		File:       file,
		Line:       d.Pos.Line,
		Col:        d.Pos.Column,
		Analyzer:   d.Analyzer,
		Message:    d.Message,
		Suppressed: reason != "",
		Reason:     reason,
	}
}

// sortRecords imposes the same total order sortDiagnostics uses, with
// active findings before suppressed ones at identical positions.
func sortRecords(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return !a.Suppressed && b.Suppressed
	})
}

// WriteJSON renders the records as indented JSON (one stable document,
// trailing newline) to w.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if recs == nil {
		recs = []Record{}
	}
	return enc.Encode(recs)
}
