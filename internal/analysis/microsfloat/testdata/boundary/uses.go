// Package boundary is a fixture for the analyzer's repository-wide rule:
// packages outside the float-free core may use floats freely, but raw
// conversions between cost.Micros and floats must go through the two
// sanctioned bridges (cost.FromMillis, Micros.Millis).
package boundary

import "imflow/internal/cost"

// scale is ordinary float arithmetic — fine outside the core.
var scale = 1.5

// Raw converts a Micros straight to float64 instead of using Millis.
func Raw(m cost.Micros) float64 {
	return float64(m) // want "converts cost.Micros to float64"
}

// Parse converts a float straight to Micros instead of using FromMillis.
func Parse(ms float64) cost.Micros {
	return cost.Micros(ms) // want "converts float64 to cost.Micros"
}

// Good uses the sanctioned bridges and must not be reported.
func Good(m cost.Micros, ms float64) (float64, cost.Micros) {
	return m.Millis() * scale, cost.FromMillis(ms)
}
