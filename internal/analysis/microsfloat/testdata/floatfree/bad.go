// Package floatfree is a deliberately violating fixture for the
// microsfloat analyzer: a package that declares itself float-free and
// then breaks the rule in every way the analyzer must catch.
//
//imflow:floatfree
package floatfree

import "imflow/internal/cost"

var ratio = 0.5 // want "declares a float64 value" "floating-point literal 0.5"

// Halve is exact integer arithmetic and must not be reported.
func Halve(m cost.Micros) cost.Micros { return m / 2 }

// Scale smuggles a float through the capacity computation.
func Scale(m cost.Micros, f float64) cost.Micros { // want "f declares a float64 value"
	return cost.Micros(float64(m) * f) // want "conversion to float64" "floating-point arithmetic"
}

// Report calls the sanctioned accessor, but inside the float-free core
// even that yields a float.
func Report(m cost.Micros) float64 {
	return m.Millis() // want "call yields float64"
}

// sneaky tries to declare its own conversion boundary; the directive is
// only honored in imflow/internal/cost.
//
//imflow:floatboundary
func sneaky(ms float64) cost.Micros { // want "only honored in imflow/internal/cost" "ms declares a float64 value"
	return cost.FromMillis(ms)
}
