// Package clean is a fixture proving the microsfloat analyzer stays
// silent on a float-free package that actually is float-free: exact
// integer capacity arithmetic over cost.Micros, as in the real core.
//
//imflow:floatfree
package clean

import "imflow/internal/cost"

// BlocksWithin mirrors the core capacity computation: an exact integer
// floor division, never a float.
func BlocksWithin(d, x, c, t cost.Micros) int64 {
	budget := t - d - x
	if budget < 0 || c <= 0 {
		return 0
	}
	return int64(budget / c)
}

// Finish is the integer completion-time recurrence.
func Finish(d, x, c cost.Micros, k int64) cost.Micros {
	return d + x + cost.Micros(k)*c
}
