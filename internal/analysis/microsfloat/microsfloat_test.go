package microsfloat_test

import (
	"testing"

	"imflow/internal/analysis"
	"imflow/internal/analysis/analyzertest"
	"imflow/internal/analysis/microsfloat"
)

// TestFloatFreeViolations proves the analyzer reports every float shape a
// //imflow:floatfree package can smuggle in: literals, declarations,
// arithmetic, conversions, float-yielding calls, and a misplaced
// //imflow:floatboundary directive.
func TestFloatFreeViolations(t *testing.T) {
	diags := analyzertest.Run(t, microsfloat.Analyzer, "testdata/floatfree")
	if len(diags) == 0 {
		t.Fatal("deliberate-violation fixture produced no diagnostics")
	}
}

// TestFloatFreeClean proves the analyzer stays silent on exact integer
// arithmetic over cost.Micros.
func TestFloatFreeClean(t *testing.T) {
	analyzertest.Run(t, microsfloat.Analyzer, "testdata/clean")
}

// TestBoundaryConversions exercises the repository-wide prong: raw
// Micros<->float conversions outside the core must go through the
// sanctioned bridges.
func TestBoundaryConversions(t *testing.T) {
	analyzertest.Run(t, microsfloat.Analyzer, "testdata/boundary")
}

// TestCoreIsFloatFree runs the analyzer over the live float-free roster —
// the same packages DESIGN.md declares exact — and requires silence. This
// is the regression gate that keeps the core honest without waiting for
// the lint driver.
func TestCoreIsFloatFree(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list; skipped in -short mode")
	}
	patterns := make([]string, 0, len(microsfloat.FloatFreeRoster))
	for _, p := range microsfloat.FloatFreeRoster {
		patterns = append(patterns, p+"/...")
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading core packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no core packages loaded")
	}
	diags, err := analysis.Run([]*analysis.Analyzer{microsfloat.Analyzer}, pkgs)
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	for _, d := range diags {
		t.Errorf("core package not float-free: %s", d)
	}
}
