// Package microsfloat implements the analyzer that keeps the repository's
// integer-microsecond core float-free.
//
// DESIGN.md's central numeric claim is that every feasibility decision —
// the capacity computation floor((t-D-X)/C) over cost.Micros — is exact
// integer arithmetic, so results can never flip due to floating-point
// rounding. The analyzer makes that claim mechanical:
//
//  1. A package marked with the //imflow:floatfree directive may not
//     contain floating-point literals, declarations, arithmetic,
//     conversions, or calls yielding floats. The only escape hatch is a
//     function carrying the //imflow:floatboundary directive, honored
//     solely inside imflow/internal/cost — the two declared ms<->us
//     bridges (FromMillis, Micros.Millis) live there; the directive
//     appearing anywhere else is itself reported.
//  2. The core packages (internal/cost, internal/flowgraph,
//     internal/maxflow and subpackages, internal/retrieval) are required
//     to carry the directive, so dropping the marker cannot silently
//     disable the check.
//  3. In every other package, converting a cost.Micros directly to a
//     float type (or a float directly to cost.Micros) is reported: the
//     sanctioned bridges are Micros.Millis and cost.FromMillis.
package microsfloat

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"imflow/internal/analysis"
)

// Directives recognized by the analyzer.
const (
	DirectiveFloatFree = "//imflow:floatfree"
	DirectiveBoundary  = "//imflow:floatboundary"
)

// costPath is the one package whose //imflow:floatboundary directives are
// honored.
const costPath = "imflow/internal/cost"

// FloatFreeRoster lists the import-path prefixes that must declare the
// floatfree directive (a prefix covers its subpackages).
var FloatFreeRoster = []string{
	"imflow/internal/cost",
	"imflow/internal/flowgraph",
	"imflow/internal/maxflow",
	"imflow/internal/retrieval",
}

// Analyzer is the microsfloat analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "microsfloat",
	Doc:  "forbid floating-point code in the integer-microsecond core and raw Micros<->float conversions everywhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	floatFree := false
	for _, f := range pass.Files {
		if analysis.FileHasDirective(f, DirectiveFloatFree) {
			floatFree = true
			break
		}
	}
	if !floatFree && onRoster(pass.Pkg.Path()) {
		pass.Reportf(pass.Files[0].Package,
			"package %s is in the float-free core but lacks the %s directive", pass.Pkg.Path(), DirectiveFloatFree)
		// Fall through: still enforce as if the directive were present.
		floatFree = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			if isFunc && analysis.HasDirective(fd.Doc, DirectiveBoundary) {
				if pass.Pkg.Path() == costPath {
					continue // declared conversion boundary
				}
				pass.Reportf(fd.Pos(), "%s directive is only honored in %s", DirectiveBoundary, costPath)
			}
			check(pass, decl, floatFree)
		}
	}
	return nil
}

func onRoster(path string) bool {
	for _, prefix := range FloatFreeRoster {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// check walks one top-level declaration reporting float usage.
func check(pass *analysis.Pass, decl ast.Decl, floatFree bool) {
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BasicLit:
			if floatFree && (n.Kind == token.FLOAT || n.Kind == token.IMAG) {
				pass.Reportf(n.Pos(), "floating-point literal %s in float-free package", n.Value)
			}
		case *ast.Ident:
			if !floatFree {
				return true
			}
			if obj := pass.Info.Defs[n]; obj != nil && obj.Type() != nil && isFloaty(obj.Type()) {
				pass.Reportf(n.Pos(), "%s declares a %s value in a float-free package", n.Name, obj.Type())
			}
		case *ast.BinaryExpr:
			if floatFree && isFloaty(pass.TypeOf(n)) {
				pass.Reportf(n.Pos(), "floating-point arithmetic in float-free package")
			}
		case *ast.UnaryExpr:
			if floatFree && isFloaty(pass.TypeOf(n)) {
				pass.Reportf(n.Pos(), "floating-point arithmetic in float-free package")
			}
		case *ast.CallExpr:
			checkCall(pass, n, floatFree)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, floatFree bool) {
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x).
		to := tv.Type
		var from types.Type
		if len(call.Args) == 1 {
			from = pass.TypeOf(call.Args[0])
		}
		switch {
		case floatFree && isFloaty(to):
			pass.Reportf(call.Pos(), "conversion to %s in float-free package", to)
		case !floatFree && isFloaty(to) && isMicros(from):
			pass.Reportf(call.Pos(), "converts cost.Micros to %s; use Micros.Millis at reporting boundaries", to)
		case !floatFree && isMicros(to) && isFloaty(from):
			pass.Reportf(call.Pos(), "converts %s to cost.Micros; use cost.FromMillis", from)
		}
		return
	}
	if floatFree && isFloaty(pass.TypeOf(call)) {
		pass.Reportf(call.Pos(), "call yields %s in float-free package", pass.TypeOf(call))
	}
}

func isFloaty(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isMicros reports whether t is (an alias of) cost.Micros.
func isMicros(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Micros" && obj.Pkg() != nil && obj.Pkg().Path() == costPath
}
