package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
}

// goList runs `go list` with the given arguments in dir and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Dir,Export,GoFiles,ImportMap,Standard"

// exportLookup builds the importer lookup function over the export-data
// files `go list -export` reported for every dependency.
func exportLookup(exports map[string]string, importMaps map[string]map[string]string, from string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if m := importMaps[from]; m != nil {
			if mapped, ok := m[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Load lists the packages matching the go-list patterns (relative to dir;
// "" means the current directory), parses their non-test Go files, and
// type-checks them against the gc export data of their dependencies.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One -deps listing supplies export data for the whole dependency
	// closure; a second plain listing identifies the analysis targets.
	deps, err := goList(dir, append([]string{"-deps", "-export", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	importMaps := make(map[string]map[string]string)
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.ImportMap) > 0 {
			importMaps[p.ImportPath] = p.ImportMap
		}
	}
	targets, err := goList(dir, append([]string{listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, t := range targets {
		if t.Standard || len(t.GoFiles) == 0 {
			continue
		}
		files, err := parseFiles(fset, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		imp := importer.ForCompiler(fset, "gc", exportLookup(exports, importMaps, t.ImportPath))
		conf := types.Config{Importer: imp}
		info := newInfo()
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}

// LoadDir parses and type-checks every .go file in dir as a single package
// outside the normal build graph — typically an analyzer test fixture
// under a testdata directory, which go list refuses to touch. Imports are
// resolved by listing the closure of the import paths that actually appear
// in the files. The package is given the module-style import path derived
// from its location so path-sensitive analyzers behave as they would on a
// real package.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loaddir %s: no Go files", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	// Gather the imports the fixture needs and list their closure.
	importSet := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	exports := map[string]string{}
	importMaps := map[string]map[string]string{}
	if len(importSet) > 0 {
		args := []string{"-deps", "-export", listFields}
		for path := range importSet {
			args = append(args, path)
		}
		deps, err := goList(dir, args...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	importPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports, importMaps, importPath))
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", dir, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// modulePath maps dir to "<module>/<relative path>" using the enclosing
// go.mod, falling back to the bare directory name outside any module.
func modulePath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return filepath.Base(abs), nil
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return filepath.Base(abs), nil
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || rel == "." {
		return module, nil
	}
	return module + "/" + filepath.ToSlash(rel), nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
