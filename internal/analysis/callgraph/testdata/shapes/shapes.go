// Package shapes is the callgraph golden fixture: each function exercises
// one resolution shape the graph must classify correctly. The test asserts
// on graph structure directly, so no // want comments appear here.
package shapes

type runner interface {
	run() int
}

type fast struct{}

func (fast) run() int { return 1 }

type slow struct{}

func (slow) run() int { return 2 }

func leaf() int { return 0 }

// direct: a plain static call.
func direct() int { return leaf() }

// dispatch: an interface method call fans out to every implementation.
func dispatch(r runner) int { return r.run() }

// methodValue: an escaping method value is a ref edge to the method.
func methodValue(f fast) func() int { return f.run }

// funcValue: an escaping function identifier is a ref edge.
func funcValue() func() int { return leaf }

// closure: calls inside a function literal are attributed to the
// enclosing declaration; the call through the local variable is dynamic.
func closure() int {
	f := func() int { return leaf() }
	return f()
}

// spawn: go statements, both resolved and literal.
func spawn() {
	go direct()
	go func() { _ = leaf() }()
}

// cycleA and cycleB recurse mutually; searches must terminate.
func cycleA(n int) int {
	if n <= 0 {
		return 0
	}
	return cycleB(n - 1)
}

func cycleB(n int) int { return cycleA(n) }

// dynamic: a call through a function-typed parameter cannot resolve.
func dynamic(f func() int) int { return f() }
