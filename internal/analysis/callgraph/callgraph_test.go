package callgraph_test

import (
	"strings"
	"testing"

	"imflow/internal/analysis"
	"imflow/internal/analysis/callgraph"
)

func buildShapes(t *testing.T) *callgraph.Graph {
	t.Helper()
	pkg, err := analysis.LoadDir("testdata/shapes")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	g, err := callgraph.Build([]*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// node finds the unique node whose ID ends with suffix.
func node(t *testing.T, g *callgraph.Graph, suffix string) *callgraph.Node {
	t.Helper()
	var found *callgraph.Node
	for id, n := range g.Nodes {
		if strings.HasSuffix(id, suffix) {
			if found != nil {
				t.Fatalf("suffix %q is ambiguous: %s and %s", suffix, found.ID, id)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node with ID suffix %q", suffix)
	}
	return found
}

// edgesTo returns n's edges whose TargetID ends with suffix.
func edgesTo(n *callgraph.Node, suffix string) []callgraph.Edge {
	var out []callgraph.Edge
	for _, e := range n.Out {
		if e.TargetID != "" && strings.HasSuffix(e.TargetID, suffix) {
			out = append(out, e)
		}
	}
	return out
}

func kinds(edges []callgraph.Edge) []callgraph.EdgeKind {
	out := make([]callgraph.EdgeKind, len(edges))
	for i, e := range edges {
		out[i] = e.Kind
	}
	return out
}

// TestDirectCall: a static call is one EdgeCall to the declared target,
// linked to its node.
func TestDirectCall(t *testing.T) {
	g := buildShapes(t)
	n := node(t, g, "shapes.direct")
	es := edgesTo(n, "shapes.leaf")
	if len(es) != 1 || es[0].Kind != callgraph.EdgeCall {
		t.Fatalf("direct → leaf edges = %v (kinds %v), want one EdgeCall", es, kinds(es))
	}
	if es[0].Callee == nil || es[0].Callee != node(t, g, "shapes.leaf") {
		t.Fatalf("direct call edge is not linked to the leaf node: %+v", es[0])
	}
}

// TestInterfaceDispatch: an interface call fans out to every concrete
// implementation as EdgeDispatch.
func TestInterfaceDispatch(t *testing.T) {
	g := buildShapes(t)
	n := node(t, g, "shapes.dispatch")
	targets := map[string]bool{}
	for _, e := range n.Out {
		if e.Kind != callgraph.EdgeDispatch {
			t.Errorf("dispatch has non-dispatch edge %v to %q", e.Kind, e.TargetID)
		}
		targets[e.TargetID] = true
	}
	if len(n.Out) != 2 ||
		!targets[node(t, g, "(fast).run").ID] ||
		!targets[node(t, g, "(slow).run").ID] {
		t.Fatalf("dispatch edges = %+v, want EdgeDispatch to (fast).run and (slow).run", n.Out)
	}
}

// TestMethodValue: an escaping method value is an EdgeRef to the method.
func TestMethodValue(t *testing.T) {
	g := buildShapes(t)
	n := node(t, g, "shapes.methodValue")
	es := edgesTo(n, "(fast).run")
	if len(es) != 1 || es[0].Kind != callgraph.EdgeRef {
		t.Fatalf("methodValue → (fast).run edges = %v (kinds %v), want one EdgeRef", es, kinds(es))
	}
}

// TestFuncValue: an escaping function identifier is an EdgeRef.
func TestFuncValue(t *testing.T) {
	g := buildShapes(t)
	n := node(t, g, "shapes.funcValue")
	es := edgesTo(n, "shapes.leaf")
	if len(es) != 1 || es[0].Kind != callgraph.EdgeRef {
		t.Fatalf("funcValue → leaf edges = %v (kinds %v), want one EdgeRef", es, kinds(es))
	}
}

// TestClosureAttribution: calls inside a function literal belong to the
// enclosing declaration; the call through the variable is EdgeDynamic.
func TestClosureAttribution(t *testing.T) {
	g := buildShapes(t)
	n := node(t, g, "shapes.closure")
	es := edgesTo(n, "shapes.leaf")
	if len(es) != 1 || es[0].Kind != callgraph.EdgeCall {
		t.Fatalf("closure → leaf edges = %v (kinds %v), want one EdgeCall attributed to closure", es, kinds(es))
	}
	dynamics := 0
	for _, e := range n.Out {
		if e.Kind == callgraph.EdgeDynamic {
			dynamics++
		}
	}
	if dynamics != 1 {
		t.Fatalf("closure has %d dynamic edges, want 1 (the f() call)", dynamics)
	}
}

// TestSpawn: go statements are EdgeSpawn — resolved for named targets,
// carrying the literal for go func(){}(), whose body's calls are still
// attributed to the spawner.
func TestSpawn(t *testing.T) {
	g := buildShapes(t)
	n := node(t, g, "shapes.spawn")
	es := edgesTo(n, "shapes.direct")
	if len(es) != 1 || es[0].Kind != callgraph.EdgeSpawn {
		t.Fatalf("spawn → direct edges = %v (kinds %v), want one EdgeSpawn", es, kinds(es))
	}
	litSpawns := 0
	for _, e := range n.Out {
		if e.Kind == callgraph.EdgeSpawn && e.Lit != nil {
			litSpawns++
		}
	}
	if litSpawns != 1 {
		t.Fatalf("spawn has %d literal spawn edges, want 1", litSpawns)
	}
	if es := edgesTo(n, "shapes.leaf"); len(es) != 1 || es[0].Kind != callgraph.EdgeCall {
		t.Fatalf("spawned literal's leaf() call = %v (kinds %v), want one EdgeCall on spawn", es, kinds(es))
	}
}

// TestRecursionTerminates: PathTo survives a recursion cycle, finds the
// one-hop path, and returns nil for unreachable goals instead of looping.
func TestRecursionTerminates(t *testing.T) {
	g := buildShapes(t)
	a, b := node(t, g, "shapes.cycleA"), node(t, g, "shapes.cycleB")
	all := func(callgraph.Edge) bool { return true }
	path := g.PathTo(a, func(n *callgraph.Node) bool { return n == b }, all)
	if len(path) != 1 {
		t.Fatalf("PathTo(cycleA, cycleB) = %v, want a one-edge path", path)
	}
	if got := callgraph.FormatPath(path); got != "shapes.cycleA → shapes.cycleB" {
		t.Fatalf("FormatPath = %q", got)
	}
	leaf := node(t, g, "shapes.leaf")
	if p := g.PathTo(a, func(n *callgraph.Node) bool { return n == leaf }, all); p != nil {
		t.Fatalf("PathTo(cycleA, leaf) = %v, want nil (unreachable)", p)
	}
}

// TestDynamicCall: a call through a function-typed parameter is recorded
// as an unresolved EdgeDynamic fact.
func TestDynamicCall(t *testing.T) {
	g := buildShapes(t)
	n := node(t, g, "shapes.dynamic")
	if len(n.Out) != 1 || n.Out[0].Kind != callgraph.EdgeDynamic || n.Out[0].TargetID != "" {
		t.Fatalf("dynamic edges = %+v, want exactly one unresolved EdgeDynamic", n.Out)
	}
}
