// Package callgraph builds a type-resolved, module-wide call graph over
// the packages the analysis loader produced, and hosts the module-level
// (interprocedural) analyzers that run on top of it.
//
// The per-package analyzers in sibling packages prove properties of one
// function body at a time; the invariants that motivated this package —
// "an //imflow:noalloc path never reaches an allocating function",
// "mutexes are always acquired in one global order" — are properties of
// *call chains*. The graph gives each declared function a Node whose edge
// list is its interprocedural fact summary: every call it makes, every
// function value it lets escape, every goroutine it spawns, each resolved
// to target Nodes where the type information permits.
//
// # Resolution
//
//   - Direct calls (pkg.F(), recv.M()) resolve to the single declared
//     target.
//   - Interface method calls resolve by method-set matching: an edge is
//     added to the declared method of every concrete named type in the
//     loaded packages that satisfies the interface (EdgeDispatch). This
//     over-approximates — the dynamic type might never be one of them —
//     but it is the sound direction for "may reach" questions.
//   - Method values and function values that escape (x.M passed as an
//     argument, f assigned to a field) produce EdgeRef edges to their
//     target: the function *may* be called wherever the value flows.
//   - go statements produce EdgeSpawn edges (resolved like calls);
//     `go func(){...}()` bodies, like all function literals, are
//     attributed to the enclosing declared function.
//
// # Soundness caveats (see DESIGN.md §11)
//
//   - Calls through plain function-typed variables, fields, and
//     parameters (hook points such as serve.Options.OnSchedule) cannot be
//     resolved; they are recorded as unresolved edges and the analyzers
//     treat their targets as unknown.
//   - Function bodies outside the loaded packages (the standard library)
//     are invisible; edges to them carry only the target's identity.
//   - Interface matching compares method signatures structurally by
//     their fully-qualified rendering, because the same package is
//     type-checked from source as an analysis target but from export
//     data when imported by another target: the two worlds disagree on
//     object identity but agree on the rendering.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"imflow/internal/analysis"
)

// EdgeKind classifies how a caller reaches a target.
type EdgeKind int

const (
	// EdgeCall is a direct (statically resolved) call or defer.
	EdgeCall EdgeKind = iota
	// EdgeDispatch is an interface method call, fanned out to every
	// concrete implementation in the loaded packages.
	EdgeDispatch
	// EdgeRef is a function or method value escaping without being
	// called at the reference site (it may be called elsewhere).
	EdgeRef
	// EdgeSpawn is a go statement.
	EdgeSpawn
	// EdgeDynamic is a call through a function-typed value the graph
	// cannot resolve; Callee is nil and TargetID is empty.
	EdgeDynamic
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDispatch:
		return "dispatch"
	case EdgeRef:
		return "ref"
	case EdgeSpawn:
		return "spawn"
	default:
		return "dynamic"
	}
}

// Edge is one outgoing fact of a function summary.
type Edge struct {
	Caller *Node
	// Callee is the resolved target node, nil when the target is outside
	// the loaded packages (TargetID still identifies it) or dynamic
	// (TargetID empty).
	Callee *Node
	Kind   EdgeKind
	// Pos is the call, reference, or go-statement position in the
	// caller's file set.
	Pos token.Pos
	// TargetID is the stable identity of the target (see FuncID), "" for
	// dynamic edges.
	TargetID string
	// TargetPkg is the target's package path ("" for dynamic edges).
	TargetPkg string
	// Lit is the spawned function literal of a `go func(){...}()` edge.
	Lit *ast.FuncLit
}

// Node is one declared function or method together with its
// interprocedural fact summary.
type Node struct {
	ID   string
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *analysis.Package
	// Out lists every call, dispatch, reference, spawn, and unresolved
	// dynamic call in the body (function literals included), in source
	// order.
	Out []Edge
}

// Name returns the node's short human form, "pkg.F" or "pkg.(T).M" with
// the package base name only.
func (n *Node) Name() string {
	id := n.ID
	if i := strings.LastIndex(id, "/"); i >= 0 {
		id = id[i+1:]
	}
	return id
}

// Graph is the module-wide call graph.
type Graph struct {
	// Nodes indexes every declared function by its stable ID.
	Nodes map[string]*Node
	// Pkgs are the packages the graph was built from.
	Pkgs []*analysis.Package

	dispatchMemo map[string][]*Node
	concrete     []types.Type
}

// FuncID renders the stable identity of fn: "pkgpath.F" for functions and
// "pkgpath.(T).M" for methods (pointer receivers are stripped). Objects
// for the same source function loaded through different importers render
// identically, which is what lets cross-package edges resolve.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		name := ""
		if named, ok := types.Unalias(t).(*types.Named); ok {
			name = named.Obj().Name()
		} else {
			name = types.TypeString(t, nil)
		}
		return pkgPath + ".(" + name + ")." + fn.Name()
	}
	return pkgPath + "." + fn.Name()
}

// Build constructs the call graph over pkgs. All packages must share one
// token.FileSet (analysis.Load guarantees this; LoadDir fixtures are a
// single package).
func Build(pkgs []*analysis.Package) (*Graph, error) {
	g := &Graph{
		Nodes:        map[string]*Node{},
		Pkgs:         pkgs,
		dispatchMemo: map[string][]*Node{},
	}
	// Pass 1: index every declared function and every concrete named type
	// (the dispatch candidates).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := FuncID(fn)
				if _, dup := g.Nodes[id]; dup {
					return nil, fmt.Errorf("callgraph: duplicate function ID %q", id)
				}
				g.Nodes[id] = &Node{ID: id, Func: fn, Decl: fd, Pkg: pkg}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			g.concrete = append(g.concrete, named)
		}
	}
	// Pass 2: walk every body and record the summary edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := g.Nodes[FuncID(fn)]
				walkBody(g, pkg, node)
			}
		}
	}
	return g, nil
}

// SortedNodes returns the nodes in deterministic (ID) order.
func (g *Graph) SortedNodes() []*Node {
	out := make([]*Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// walkBody records node's summary edges. Function literal bodies are
// walked in place, attributing their calls to the enclosing declaration.
func walkBody(g *Graph, pkg *analysis.Package, node *Node) {
	info := pkg.Info
	// funOf marks expressions in call-function position (so a later
	// visit does not double-record them as escaping references), and
	// spawns marks the calls of go statements.
	funOf := map[ast.Expr]bool{}
	spawns := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns[n.Call] = true
		case *ast.CallExpr:
			funOf[uninstantiate(ast.Unparen(n.Fun))] = true
		}
		return true
	})

	var stack []ast.Node
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			kind := EdgeCall
			if spawns[n] {
				kind = EdgeSpawn
			}
			resolveCall(g, info, node, n, kind)
		case *ast.Ident:
			// A bare function identifier escaping as a value.
			if funOf[n] || isSelectorSel(stack, n) {
				return true
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				addResolved(g, node, fn, EdgeRef, n.Pos())
			}
		case *ast.SelectorExpr:
			// A method or qualified-function value escaping.
			if funOf[n] {
				return true
			}
			if sel, ok := info.Selections[n]; ok {
				if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
					m, _ := sel.Obj().(*types.Func)
					if m == nil {
						return true
					}
					if iface := recvInterface(sel); iface != nil {
						addDispatch(g, node, m, iface, EdgeRef, n.Pos())
					} else {
						addResolved(g, node, m, EdgeRef, n.Pos())
					}
				}
				return true
			}
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				addResolved(g, node, fn, EdgeRef, n.Pos())
			}
		}
		return true
	})
}

// isSelectorSel reports whether id is the Sel child of its parent
// selector (handled when the selector itself is visited).
func isSelectorSel(stack []ast.Node, id *ast.Ident) bool {
	if len(stack) < 2 {
		return false
	}
	sel, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	return ok && sel.Sel == id
}

// uninstantiate strips an explicit generic instantiation f[T] down to f.
func uninstantiate(e ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.IndexExpr:
		return ast.Unparen(x.X)
	case *ast.IndexListExpr:
		return ast.Unparen(x.X)
	}
	return e
}

// resolveCall classifies one call (or spawn) expression and appends the
// resulting edge(s).
func resolveCall(g *Graph, info *types.Info, node *Node, call *ast.CallExpr, kind EdgeKind) {
	fun := uninstantiate(ast.Unparen(call.Fun))
	switch f := fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[f].(type) {
		case *types.Func:
			addResolved(g, node, o, kind, call.Pos())
		case *types.Builtin, *types.TypeName, nil:
			// builtin or conversion: no edge
		default:
			node.Out = append(node.Out, Edge{Caller: node, Kind: dynamicKind(kind), Pos: call.Pos()})
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m, _ := sel.Obj().(*types.Func)
				if m == nil {
					return
				}
				if iface := recvInterface(sel); iface != nil {
					addDispatch(g, node, m, iface, dispatchKind(kind), call.Pos())
				} else {
					addResolved(g, node, m, kind, call.Pos())
				}
			case types.FieldVal:
				// calling a function-typed field: dynamic
				node.Out = append(node.Out, Edge{Caller: node, Kind: dynamicKind(kind), Pos: call.Pos()})
			}
			return
		}
		switch o := info.Uses[f.Sel].(type) {
		case *types.Func:
			addResolved(g, node, o, kind, call.Pos())
		case *types.TypeName, *types.Builtin, nil:
			// conversion: no edge
		default:
			node.Out = append(node.Out, Edge{Caller: node, Kind: dynamicKind(kind), Pos: call.Pos()})
		}
	case *ast.FuncLit:
		// Immediately-invoked literal: its body is attributed to the
		// enclosing function by the walk, so there is nothing to add —
		// except for spawns, where the goroutine identity matters.
		if kind == EdgeSpawn {
			node.Out = append(node.Out, Edge{Caller: node, Kind: EdgeSpawn, Pos: call.Pos(), Lit: f})
		}
	default:
		// Conversions through type expressions, calls of call results,
		// index expressions over function slices, ...
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		node.Out = append(node.Out, Edge{Caller: node, Kind: dynamicKind(kind), Pos: call.Pos()})
	}
}

func dynamicKind(kind EdgeKind) EdgeKind {
	if kind == EdgeSpawn {
		return EdgeSpawn // an unresolved spawn is still a spawn fact
	}
	return EdgeDynamic
}

func dispatchKind(kind EdgeKind) EdgeKind {
	if kind == EdgeSpawn {
		return EdgeSpawn
	}
	return EdgeDispatch
}

// recvInterface returns the receiver's interface type for an interface
// method selection, nil for concrete receivers.
func recvInterface(sel *types.Selection) *types.Interface {
	if sel.Kind() == types.MethodExpr {
		// I.M yields a func whose first parameter is the receiver.
		if sig, ok := sel.Type().(*types.Signature); ok && sig.Params().Len() > 0 {
			if iface, ok := sig.Params().At(0).Type().Underlying().(*types.Interface); ok {
				return iface
			}
		}
		return nil
	}
	t := sel.Recv()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// addResolved appends one edge to a statically known target, linking it
// to the target's node when the function is declared in the loaded
// packages.
func addResolved(g *Graph, node *Node, fn *types.Func, kind EdgeKind, pos token.Pos) {
	id := FuncID(fn)
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	node.Out = append(node.Out, Edge{
		Caller:    node,
		Callee:    g.Nodes[id],
		Kind:      kind,
		Pos:       pos,
		TargetID:  id,
		TargetPkg: pkgPath,
	})
}

// addDispatch fans an interface method call out to every implementation.
func addDispatch(g *Graph, node *Node, m *types.Func, iface *types.Interface, kind EdgeKind, pos token.Pos) {
	impls := g.implementations(m, iface)
	if len(impls) == 0 {
		// No implementation in the loaded packages: keep the abstract
		// target so diagnostics can still name it.
		addResolved(g, node, m, kind, pos)
		return
	}
	for _, impl := range impls {
		node.Out = append(node.Out, Edge{
			Caller:    node,
			Callee:    impl,
			Kind:      kind,
			Pos:       pos,
			TargetID:  impl.ID,
			TargetPkg: impl.Func.Pkg().Path(),
		})
	}
}

// sigKey renders a signature's parameters and results with
// fully-qualified type names, ignoring the receiver — the structural
// identity used to match interface methods across type-check worlds.
func sigKey(sig *types.Signature) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), qual))
	}
	b.WriteByte(')')
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), qual))
	}
	return b.String()
}

// implementations returns the declared methods that an interface call to
// m may dispatch to: for every concrete named type whose (pointer)
// method set structurally satisfies iface, the declared method named like
// m. Results are memoized per interface/method rendering and returned in
// deterministic order.
func (g *Graph) implementations(m *types.Func, iface *types.Interface) []*Node {
	qual := func(p *types.Package) string { return p.Path() }
	memoKey := types.TypeString(iface, qual) + "." + m.Name()
	if impls, ok := g.dispatchMemo[memoKey]; ok {
		return impls
	}
	var out []*Node
	for _, T := range g.concrete {
		ms := types.NewMethodSet(types.NewPointer(T))
		if !satisfies(ms, iface) {
			continue
		}
		target := lookupMethod(ms, m)
		if target == nil {
			continue
		}
		if node := g.Nodes[FuncID(target)]; node != nil {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	g.dispatchMemo[memoKey] = out
	return out
}

// satisfies reports whether the method set covers every method of iface,
// matching by name, exportedness-aware package, and structural signature.
func satisfies(ms *types.MethodSet, iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if lookupMethod(ms, iface.Method(i)) == nil {
			return false
		}
	}
	return true
}

// lookupMethod finds the method-set member matching m and returns its
// declared *types.Func, nil when absent or signature-mismatched.
func lookupMethod(ms *types.MethodSet, m *types.Func) *types.Func {
	want, _ := m.Type().(*types.Signature)
	if want == nil {
		return nil
	}
	for i := 0; i < ms.Len(); i++ {
		obj, _ := ms.At(i).Obj().(*types.Func)
		if obj == nil || obj.Name() != m.Name() {
			continue
		}
		if !m.Exported() {
			mp, op := "", ""
			if m.Pkg() != nil {
				mp = m.Pkg().Path()
			}
			if obj.Pkg() != nil {
				op = obj.Pkg().Path()
			}
			if mp != op {
				continue
			}
		}
		got, _ := obj.Type().(*types.Signature)
		if got != nil && sigKey(got) == sigKey(want) {
			return obj
		}
	}
	return nil
}
