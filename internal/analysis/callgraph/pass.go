package callgraph

import (
	"fmt"
	"go/token"

	"imflow/internal/analysis"
)

// Analyzer is a module-level analyzer: where analysis.Analyzer sees one
// package at a time, a callgraph.Analyzer sees the whole loaded module
// through its call graph.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass) error
}

// Pass presents the call graph to one module analyzer.
type Pass struct {
	Analyzer *Analyzer
	Graph    *Graph

	diags *[]analysis.Diagnostic
}

// Reportf records a diagnostic at pos, resolved through the reporting
// node's file set.
func (p *Pass) Reportf(node *Node, pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, analysis.Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      node.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves pos in node's file set (for embedding secondary
// positions in messages).
func (p *Pass) Position(node *Node, pos token.Pos) token.Position {
	return node.Pkg.Fset.Position(pos)
}

// Run applies every module analyzer to the graph and returns the merged
// diagnostics, sorted in the same total order analysis.Run uses.
func Run(analyzers []*Analyzer, g *Graph) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Graph: g, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	analysis.SortDiagnostics(diags)
	return diags, nil
}

// PathTo runs a breadth-first search from start following edges for which
// follow returns true, until goal returns true for a node; it returns the
// edge sequence of a shortest such path (nil when unreachable). goal may
// hold for start itself, yielding an empty, non-nil path.
func (g *Graph) PathTo(start *Node, goal func(*Node) bool, follow func(Edge) bool) []Edge {
	if goal(start) {
		return []Edge{}
	}
	type item struct {
		node *Node
		via  []Edge
	}
	seen := map[*Node]bool{start: true}
	queue := []item{{node: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.node.Out {
			if e.Callee == nil || !follow(e) || seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			path := append(append([]Edge{}, cur.via...), e)
			if goal(e.Callee) {
				return path
			}
			queue = append(queue, item{node: e.Callee, via: path})
		}
	}
	return nil
}

// FormatPath renders an edge path as "f → g → h" starting from the
// caller of the first edge.
func FormatPath(path []Edge) string {
	if len(path) == 0 {
		return ""
	}
	s := path[0].Caller.Name()
	for _, e := range path {
		s += " → " + e.Callee.Name()
	}
	return s
}
