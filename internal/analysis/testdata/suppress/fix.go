// Package suppressfix exercises the driver's suppression grammar: the
// standalone and end-of-line forms, the reasonless (malformed) form, and
// a finding with no suppression at all. driver_test.go asserts the exact
// active/suppressed split this file produces.
package suppressfix

import "imflow/internal/cost"

// standalone is silenced by a comment on the line above.
func standalone(a, b cost.Micros) cost.Micros {
	//lint:ignore satarith fixture: standalone suppression form
	return a + b
}

// inline is silenced by a comment on the same line.
func inline(a, b cost.Micros) cost.Micros {
	return a - b //lint:ignore satarith fixture: end-of-line suppression form
}

// reasonless omits the mandatory reason: the finding below stays active
// and the comment itself becomes a second, malformed-suppression finding.
func reasonless(a, b cost.Micros) cost.Micros {
	//lint:ignore satarith
	return a * b
}

// naked has no suppression anywhere.
func naked(a, b cost.Micros) cost.Micros {
	return a + b
}

// typod names an analyzer that is not in the roster: the comment
// silences nothing (the finding below stays active) and is itself a
// malformed-suppression finding.
func typod(a, b cost.Micros) cost.Micros {
	//lint:ignore satarith-typo fixture: unknown analyzer name
	return a + b
}
