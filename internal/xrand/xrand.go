// Package xrand provides a small, deterministic pseudo-random number
// generator (splitmix64) plus the sampling helpers the workload generators
// need. A fixed algorithm with explicit seeding keeps every experiment in
// the repository bit-reproducible across Go releases, which math/rand's
// unexported generator selection does not guarantee.
package xrand

// Source is a splitmix64 generator. The zero value is a valid generator
// seeded with 0; use New to seed explicitly.
type Source struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to keep
	// the distribution exactly uniform.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= uint64(-bound)%bound {
			return int(hi)
		}
	}
}

// IntRange returns a uniform integer in [lo, hi] inclusive.
func (s *Source) IntRange(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntRange with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n) in
// selection order. It panics if k > n.
func (s *Source) Sample(n, k int) []int {
	if k > n {
		panic("xrand: Sample k > n")
	}
	// Floyd's algorithm: O(k) expected work, no O(n) allocation.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		v := s.Intn(j + 1)
		if _, dup := chosen[v]; dup {
			v = j
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// WeightedIndex draws an index i with probability weights[i]/sum(weights).
// Weights must be non-negative with a positive sum.
func (s *Source) WeightedIndex(weights []float64) int {
	var sum float64
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		sum += w
	}
	if sum <= 0 {
		panic("xrand: weights sum to zero")
	}
	x := s.Float64() * sum
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Fork derives an independent generator from the current one. Streams from
// the parent and child do not overlap for any practical draw count.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xD1B54A32D192ED03)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
