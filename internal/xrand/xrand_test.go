package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestKnownSplitmix64Vector(t *testing.T) {
	// Reference values of splitmix64 seeded with 0 (from the public-domain
	// reference implementation by Sebastiano Vigna).
	want := []uint64{
		0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F,
		0xF88BB8A8724C81EC, 0x1B39896A51A8749B,
	}
	s := New(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("draw %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	for v, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("value %d drawn %d times, expected ~%d", v, c, draws/n)
		}
	}
}

func TestIntRange(t *testing.T) {
	s := New(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange(5,8) = %d", v)
		}
		seen[v] = true
	}
	for v := 5; v <= 8; v++ {
		if !seen[v] {
			t.Errorf("IntRange never produced %d", v)
		}
	}
	if got := s.IntRange(4, 4); got != 4 {
		t.Errorf("degenerate range: got %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		if f := s.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(11)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSampleDistinct(t *testing.T) {
	s := New(13)
	err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		out := s.Sample(n, k)
		if len(out) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSampleFullRange(t *testing.T) {
	s := New(17)
	out := s.Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range out {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("Sample(10,10) missing %d", i)
		}
	}
}

func TestWeightedIndex(t *testing.T) {
	s := New(19)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[s.WeightedIndex(weights)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("weight-3/weight-1 ratio %.2f, want ~3", ratio)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(23)
	child := parent.Fork()
	// The child stream must differ from the parent's continued stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("fork looks correlated: %d/100 equal draws", same)
	}
}

func TestShuffleCoversArrangements(t *testing.T) {
	s := New(29)
	// All 6 arrangements of 3 elements should appear.
	seen := map[[3]int]bool{}
	for i := 0; i < 600; i++ {
		arr := [3]int{0, 1, 2}
		s.Shuffle(3, func(a, b int) { arr[a], arr[b] = arr[b], arr[a] })
		seen[arr] = true
	}
	if len(seen) != 6 {
		t.Errorf("saw %d/6 arrangements", len(seen))
	}
}
