// Package cost defines the integer time representation used throughout the
// retrieval library.
//
// The paper expresses every disk parameter in milliseconds with at most one
// decimal digit (Table III) and every network delay and initial load as an
// integral number of milliseconds (Table IV). Representing times as integer
// microseconds therefore loses nothing, and it makes the capacity
// computation floor((t-D-X)/C) an exact integer division: feasibility
// decisions can never flip due to floating-point rounding.
//
// The microsfloat analyzer (cmd/imflow-lint) enforces that claim: this
// package is float-free except for the two declared conversion
// boundaries FromMillis and Micros.Millis.
//
//imflow:floatfree
package cost

import (
	"fmt"
	"math"
	"time"
)

// Micros is a duration or instant measured in integer microseconds.
type Micros int64

// Max is the largest representable Micros, used as an "infinity" sentinel.
// All saturating arithmetic in this package clamps to it on positive
// overflow, so a completion time that does not fit the representation is
// reported as "never" rather than wrapping to a bogus feasible value.
const Max Micros = math.MaxInt64

// Min is the smallest representable Micros, the negative saturation point
// of SatSub. It only ever appears in intermediate budget computations;
// validated disk parameters and candidate times are non-negative.
const Min Micros = math.MinInt64

// FromMillis converts a (possibly fractional) millisecond quantity to
// Micros, rounding to the nearest microsecond. Values beyond the Micros
// range saturate at Max/Min, and NaN converts to zero (which validation
// downstream rejects wherever a positive quantity is required); the
// float-to-int conversion is therefore never applied to an out-of-range
// value, whose result Go leaves implementation-defined. It is one of the
// two declared float boundaries of the integer core.
//
//imflow:floatboundary
func FromMillis(ms float64) Micros {
	us := math.Round(ms * 1000)
	if math.IsNaN(us) {
		return 0
	}
	if us >= float64(Max) { // 2^63-1 rounds up to 2^63 as a float64
		return Max
	}
	if us <= float64(Min) {
		return Min
	}
	return Micros(us)
}

// SatAdd returns a+b, saturating at Max/Min instead of wrapping.
func SatAdd(a, b Micros) Micros {
	s := a + b
	// Overflow iff both operands share a sign and the sum flipped it.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		if a >= 0 {
			return Max
		}
		return Min
	}
	return s
}

// SatSub returns a-b, saturating at Max/Min instead of wrapping.
func SatSub(a, b Micros) Micros {
	if b == Min {
		// -Min is not representable: a - Min = a + (Max+1).
		if a >= 0 {
			return Max
		}
		return SatAdd(a+1, Max) // a+1 is safe: a < 0
	}
	return SatAdd(a, -b)
}

// SatMul returns a*b, saturating at Max/Min instead of wrapping.
func SatMul(a, b Micros) Micros {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == -1 && b == Min) || (b == -1 && a == Min) {
		if (a > 0) == (b > 0) {
			return Max
		}
		return Min
	}
	return p
}

// Millis converts back to floating-point milliseconds for reporting. It
// is one of the two declared float boundaries of the integer core.
//
//imflow:floatboundary
func (m Micros) Millis() float64 { return float64(m) / 1000 }

// String renders the value as milliseconds with microsecond precision.
// Formatting for humans goes through Millis, so String is a declared
// float boundary like the accessor it wraps.
//
//imflow:floatboundary
func (m Micros) String() string {
	return fmt.Sprintf("%.3fms", m.Millis())
}

// Duration converts m to a time.Duration, saturating instead of
// wrapping. A Duration counts nanoseconds, so any Micros beyond
// ±(2^63-1)/1000 — in particular the Max "infinity" sentinel that
// saturating arithmetic produces — has no representable nanosecond
// count; a plain time.Duration(m)*time.Microsecond multiplication
// wraps it to an arbitrary (often negative) value, which turned the
// deadline comparison it was written for inside out.
func (m Micros) Duration() time.Duration {
	if m > Max/1000 {
		return time.Duration(math.MaxInt64)
	}
	if m < Min/1000 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(m) * time.Microsecond
}

// DiskFinish returns the completion time of a disk with network delay d,
// initial load x and per-block service time c retrieving k blocks:
// d + x + k*c, saturating at Max instead of wrapping (a schedule that
// does not finish within the representable horizon must compare as
// "later than everything", never as a small wrapped value). k must be
// non-negative.
func DiskFinish(d, x, c Micros, k int64) Micros {
	if k < 0 {
		panic("cost: negative block count")
	}
	return SatAdd(SatAdd(d, x), SatMul(Micros(k), c))
}

// BlocksWithin returns the largest k >= 0 such that d + x + k*c <= t, i.e.
// the disk-to-sink edge capacity for candidate response time t. The result
// is clamped to [0, limit]; pass limit < 0 for no clamp.
//
// The budget t - (d+x) is computed with saturating subtraction and the
// negative case is clamped to capacity 0 explicitly: Go's integer division
// truncates toward zero, so a wrapped or negative numerator must never
// reach the division (floor(-1/c) would otherwise "round up" to 0 blocks
// for the wrong reason, and a wrapped positive numerator would fabricate
// capacity).
func BlocksWithin(d, x, c Micros, t Micros, limit int64) int64 {
	if c <= 0 {
		panic("cost: non-positive service time")
	}
	budget := SatSub(SatSub(t, d), x)
	if budget < 0 {
		return 0
	}
	k := int64(budget / c)
	if limit >= 0 && k > limit {
		k = limit
	}
	return k
}
