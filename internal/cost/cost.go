// Package cost defines the integer time representation used throughout the
// retrieval library.
//
// The paper expresses every disk parameter in milliseconds with at most one
// decimal digit (Table III) and every network delay and initial load as an
// integral number of milliseconds (Table IV). Representing times as integer
// microseconds therefore loses nothing, and it makes the capacity
// computation floor((t-D-X)/C) an exact integer division: feasibility
// decisions can never flip due to floating-point rounding.
//
// The microsfloat analyzer (cmd/imflow-lint) enforces that claim: this
// package is float-free except for the two declared conversion
// boundaries FromMillis and Micros.Millis.
//
//imflow:floatfree
package cost

import (
	"fmt"
	"math"
)

// Micros is a duration or instant measured in integer microseconds.
type Micros int64

// Max is the largest representable Micros, used as an "infinity" sentinel.
const Max Micros = math.MaxInt64

// FromMillis converts a (possibly fractional) millisecond quantity to
// Micros, rounding to the nearest microsecond. It is one of the two
// declared float boundaries of the integer core.
//
//imflow:floatboundary
func FromMillis(ms float64) Micros {
	return Micros(math.Round(ms * 1000))
}

// Millis converts back to floating-point milliseconds for reporting. It
// is one of the two declared float boundaries of the integer core.
//
//imflow:floatboundary
func (m Micros) Millis() float64 { return float64(m) / 1000 }

// String renders the value as milliseconds with microsecond precision.
// Formatting for humans goes through Millis, so String is a declared
// float boundary like the accessor it wraps.
//
//imflow:floatboundary
func (m Micros) String() string {
	return fmt.Sprintf("%.3fms", m.Millis())
}

// DiskFinish returns the completion time of a disk with network delay d,
// initial load x and per-block service time c retrieving k blocks:
// d + x + k*c. k must be non-negative.
func DiskFinish(d, x, c Micros, k int64) Micros {
	if k < 0 {
		panic("cost: negative block count")
	}
	return d + x + Micros(k)*c
}

// BlocksWithin returns the largest k >= 0 such that d + x + k*c <= t, i.e.
// the disk-to-sink edge capacity for candidate response time t. The result
// is clamped to [0, limit]; pass limit < 0 for no clamp.
func BlocksWithin(d, x, c Micros, t Micros, limit int64) int64 {
	if c <= 0 {
		panic("cost: non-positive service time")
	}
	budget := t - d - x
	if budget < 0 {
		return 0
	}
	k := int64(budget / c)
	if limit >= 0 && k > limit {
		k = limit
	}
	return k
}
