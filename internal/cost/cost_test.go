package cost

import (
	"testing"
	"testing/quick"
)

func TestFromMillisExactness(t *testing.T) {
	// Every Table III / Table IV value must convert exactly.
	cases := []struct {
		ms   float64
		want Micros
	}{
		{13.2, 13200}, {8.3, 8300}, {6.1, 6100}, {0.5, 500}, {0.2, 200},
		{2, 2000}, {10, 10000}, {0, 0},
	}
	for _, c := range cases {
		if got := FromMillis(c.ms); got != c.want {
			t.Errorf("FromMillis(%v) = %d, want %d", c.ms, got, c.want)
		}
	}
}

func TestMillisRoundTrip(t *testing.T) {
	err := quick.Check(func(raw int32) bool {
		m := Micros(raw)
		return FromMillis(m.Millis()) == m
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDiskFinish(t *testing.T) {
	if got := DiskFinish(2000, 1000, 8300, 3); got != 2000+1000+3*8300 {
		t.Errorf("DiskFinish = %d", got)
	}
	if got := DiskFinish(0, 0, 200, 0); got != 0 {
		t.Errorf("DiskFinish(k=0) = %d, want 0", got)
	}
}

func TestDiskFinishPanicsOnNegativeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative k")
		}
	}()
	DiskFinish(0, 0, 1, -1)
}

func TestBlocksWithin(t *testing.T) {
	cases := []struct {
		d, x, c, t Micros
		limit      int64
		want       int64
	}{
		{0, 0, 100, 1000, -1, 10},
		{0, 0, 100, 999, -1, 9},
		{0, 0, 100, 1000, 5, 5},   // clamped
		{500, 0, 100, 400, -1, 0}, // budget negative
		{500, 300, 100, 800, -1, 0},
		{500, 300, 100, 900, -1, 1},
		{0, 0, 7, 20, -1, 2},
	}
	for _, c := range cases {
		if got := BlocksWithin(c.d, c.x, c.c, c.t, c.limit); got != c.want {
			t.Errorf("BlocksWithin(%d,%d,%d,%d,%d) = %d, want %d",
				c.d, c.x, c.c, c.t, c.limit, got, c.want)
		}
	}
}

// TestBlocksWithinInvertsDiskFinish is the exactness property the integer
// representation exists for: for any k, capacity at t = DiskFinish(k) is
// exactly k (never k-1 from rounding).
func TestBlocksWithinInvertsDiskFinish(t *testing.T) {
	err := quick.Check(func(dRaw, xRaw uint16, cRaw uint8, kRaw uint8) bool {
		d, x := Micros(dRaw), Micros(xRaw)
		c := Micros(cRaw) + 1
		k := int64(kRaw)
		finish := DiskFinish(d, x, c, k)
		return BlocksWithin(d, x, c, finish, -1) == k &&
			(k == 0 || BlocksWithin(d, x, c, finish-1, -1) == k-1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBlocksWithinPanicsOnBadService(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero service time")
		}
	}()
	BlocksWithin(0, 0, 0, 100, -1)
}

func TestString(t *testing.T) {
	if got := Micros(8300).String(); got != "8.300ms" {
		t.Errorf("String = %q", got)
	}
}
