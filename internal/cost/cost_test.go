package cost

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFromMillisExactness(t *testing.T) {
	// Every Table III / Table IV value must convert exactly.
	cases := []struct {
		ms   float64
		want Micros
	}{
		{13.2, 13200}, {8.3, 8300}, {6.1, 6100}, {0.5, 500}, {0.2, 200},
		{2, 2000}, {10, 10000}, {0, 0},
	}
	for _, c := range cases {
		if got := FromMillis(c.ms); got != c.want {
			t.Errorf("FromMillis(%v) = %d, want %d", c.ms, got, c.want)
		}
	}
}

func TestMillisRoundTrip(t *testing.T) {
	err := quick.Check(func(raw int32) bool {
		m := Micros(raw)
		return FromMillis(m.Millis()) == m
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestDiskFinish(t *testing.T) {
	if got := DiskFinish(2000, 1000, 8300, 3); got != 2000+1000+3*8300 {
		t.Errorf("DiskFinish = %d", got)
	}
	if got := DiskFinish(0, 0, 200, 0); got != 0 {
		t.Errorf("DiskFinish(k=0) = %d, want 0", got)
	}
}

func TestDiskFinishPanicsOnNegativeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative k")
		}
	}()
	DiskFinish(0, 0, 1, -1)
}

func TestBlocksWithin(t *testing.T) {
	cases := []struct {
		d, x, c, t Micros
		limit      int64
		want       int64
	}{
		{0, 0, 100, 1000, -1, 10},
		{0, 0, 100, 999, -1, 9},
		{0, 0, 100, 1000, 5, 5},   // clamped
		{500, 0, 100, 400, -1, 0}, // budget negative
		{500, 300, 100, 800, -1, 0},
		{500, 300, 100, 900, -1, 1},
		{0, 0, 7, 20, -1, 2},
	}
	for _, c := range cases {
		if got := BlocksWithin(c.d, c.x, c.c, c.t, c.limit); got != c.want {
			t.Errorf("BlocksWithin(%d,%d,%d,%d,%d) = %d, want %d",
				c.d, c.x, c.c, c.t, c.limit, got, c.want)
		}
	}
}

// TestBlocksWithinInvertsDiskFinish is the exactness property the integer
// representation exists for: for any k, capacity at t = DiskFinish(k) is
// exactly k (never k-1 from rounding).
func TestBlocksWithinInvertsDiskFinish(t *testing.T) {
	err := quick.Check(func(dRaw, xRaw uint16, cRaw uint8, kRaw uint8) bool {
		d, x := Micros(dRaw), Micros(xRaw)
		c := Micros(cRaw) + 1
		k := int64(kRaw)
		finish := DiskFinish(d, x, c, k)
		return BlocksWithin(d, x, c, finish, -1) == k &&
			(k == 0 || BlocksWithin(d, x, c, finish-1, -1) == k-1)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBlocksWithinPanicsOnBadService(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero service time")
		}
	}()
	BlocksWithin(0, 0, 0, 100, -1)
}

func TestString(t *testing.T) {
	if got := Micros(8300).String(); got != "8.300ms" {
		t.Errorf("String = %q", got)
	}
}

// TestDurationSaturates pins the fix for the deadline-check wrap: a
// saturated age (SatSub clamped at Max) multiplied into nanoseconds by a
// plain time.Duration conversion wrapped to -1000ns, which compared
// "younger than any deadline" and let an unservable query through.
func TestDurationSaturates(t *testing.T) {
	cases := []struct {
		m    Micros
		want time.Duration
	}{
		{0, 0},
		{8300, 8300 * time.Microsecond},
		{-8300, -8300 * time.Microsecond},
		{Max / 1000, time.Duration(Max/1000) * time.Microsecond},
		{Max/1000 + 1, time.Duration(math.MaxInt64)},
		{Max, time.Duration(math.MaxInt64)},
		{Min / 1000, time.Duration(Min/1000) * time.Microsecond},
		{Min/1000 - 1, time.Duration(math.MinInt64)},
		{Min, time.Duration(math.MinInt64)},
	}
	for _, c := range cases {
		if got := c.m.Duration(); got != c.want {
			t.Errorf("Micros(%d).Duration() = %d, want %d", c.m, got, c.want)
		}
	}
	// The shape of the original bug, for the record: the unclamped
	// conversion of the Max sentinel wraps negative. (Computed through a
	// variable: as a constant expression the overflow would not compile.)
	sentinel := Max
	if wrapped := time.Duration(sentinel) * time.Microsecond; wrapped >= 0 {
		t.Fatalf("expected the naive conversion to wrap negative, got %d", wrapped)
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want Micros }{
		{1, 2, 3},
		{-1, -2, -3},
		{Max, 1, Max},
		{Max, Max, Max},
		{Min, -1, Min},
		{Min, Min, Min},
		{Max, Min, -1}, // exact: no overflow across signs
		{Min, Max, -1},
		{Max - 1, 1, Max},
		{0, Max, Max},
		{0, Min, Min},
	}
	for _, c := range cases {
		if got := SatAdd(c.a, c.b); got != c.want {
			t.Errorf("SatAdd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatSub(t *testing.T) {
	cases := []struct{ a, b, want Micros }{
		{5, 3, 2},
		{3, 5, -2},
		{0, Min, Max},  // -Min overflows; saturate
		{-1, Min, Max}, // -1 - Min = Max exactly
		{-2, Min, Max - 1},
		{Min, 1, Min},
		{Min, Max, Min},
		{Max, -1, Max},
		{Max, Min, Max},
	}
	for _, c := range cases {
		if got := SatSub(c.a, c.b); got != c.want {
			t.Errorf("SatSub(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSatMul(t *testing.T) {
	cases := []struct{ a, b, want Micros }{
		{3, 4, 12},
		{-3, 4, -12},
		{0, Max, 0},
		{Max, 2, Max},
		{2, Max, Max},
		{Min, 2, Min},
		{-2, Max, Min},
		{Min, -1, Max}, // the p/b == a wrap trap
		{-1, Min, Max},
		{1 << 32, 1 << 32, Max},
	}
	for _, c := range cases {
		if got := SatMul(c.a, c.b); got != c.want {
			t.Errorf("SatMul(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestDiskFinishOverflowRegression pins the bug the saturating sweep
// fixed: for adversarial k and c (exactly what FuzzSolverConsensus can
// generate), d + x + k*c evaluated with plain int64 arithmetic wraps
// negative — a "finishes before the epoch" completion time that flips
// feasibility decisions. DiskFinish must saturate at Max instead.
func TestDiskFinishOverflowRegression(t *testing.T) {
	d, x, c := Micros(1000), Micros(1000), Max/2
	k := int64(3) // k*c wraps: 3*(Max/2) > Max
	if wrapped := d + x + Micros(k)*c; wrapped >= 0 {
		t.Fatalf("regression precondition lost: plain arithmetic no longer wraps (got %d)", wrapped)
	}
	if got := DiskFinish(d, x, c, k); got != Max {
		t.Errorf("DiskFinish(%d,%d,%d,%d) = %d, want saturated Max", d, x, c, k, got)
	}
	// The d+x half can wrap on its own too.
	bigD, bigX := Max-1, Max-1
	if wrapped := bigD + bigX; wrapped >= 0 {
		t.Fatalf("regression precondition lost: d+x no longer wraps")
	}
	if got := DiskFinish(Max-1, Max-1, 1, 0); got != Max {
		t.Errorf("DiskFinish(Max-1, Max-1, 1, 0) = %d, want saturated Max", got)
	}
	// Saturation must be sticky: adding more blocks keeps it at Max.
	if got := DiskFinish(Max-1, Max-1, Max, 7); got != Max {
		t.Errorf("DiskFinish fully saturated = %d, want Max", got)
	}
}

// TestBlocksWithinClampEdges is the clamp audit demanded by the overflow
// sweep: t exactly D+X, one microsecond below, and t at the Max sentinel,
// including parameter combinations whose intermediate subtraction wraps
// without saturation.
func TestBlocksWithinClampEdges(t *testing.T) {
	cases := []struct {
		name       string
		d, x, c, t Micros
		limit      int64
		want       int64
	}{
		{"t exactly D+X", 500, 300, 100, 800, -1, 0},
		{"one us below D+X", 500, 300, 100, 799, -1, 0},
		{"one us above D+X", 500, 300, 100, 801, -1, 0},
		{"first block boundary", 500, 300, 100, 900, -1, 1},
		{"t at Max, tiny disk", 0, 0, 1, Max, -1, int64(Max)},
		{"t at Max, clamped", 1000, 1000, 7, Max, 42, 42},
		{"t at Max, D+X saturates", Max, Max, 1, Max, -1, 0},
		{"t zero, huge load", 0, Max, 1, 0, -1, 0},
		{"huge delay, wrap-prone budget", Max - 1, Max - 1, 3, 10, -1, 0},
		{"negative t never fabricates capacity", Max, 0, 5, Min, -1, 0},
	}
	for _, c := range cases {
		if got := BlocksWithin(c.d, c.x, c.c, c.t, c.limit); got != c.want {
			t.Errorf("%s: BlocksWithin(%d,%d,%d,%d,%d) = %d, want %d",
				c.name, c.d, c.x, c.c, c.t, c.limit, got, c.want)
		}
	}
}

// TestFromMillisSaturates: the float boundary clamps out-of-range and NaN
// inputs instead of performing an implementation-defined conversion.
func TestFromMillisSaturates(t *testing.T) {
	inf := 1.0
	for i := 0; i < 2000; i++ { // build +Inf without importing math here
		inf *= 10
	}
	cases := []struct {
		ms   float64
		want Micros
	}{
		{1e300, Max},
		{-1e300, Min},
		{inf, Max},
		{-inf, Min},
		{inf - inf, 0}, // NaN
	}
	for _, c := range cases {
		if got := FromMillis(c.ms); got != c.want {
			t.Errorf("FromMillis(%v) = %d, want %d", c.ms, got, c.want)
		}
	}
}

// TestSatOpsAgreeWithWideArithmetic quick-checks the saturating helpers
// against 128-bit-style reference computations on random operands.
func TestSatOpsAgreeWithWideArithmetic(t *testing.T) {
	err := quick.Check(func(aRaw, bRaw int64) bool {
		a, b := Micros(aRaw), Micros(bRaw)
		// Reference via big-ish decomposition: detect overflow from the
		// sign structure of exact math on int64 halves is overkill; use
		// float64 only as a coarse guide and exact checks near the rails.
		sum := SatAdd(a, b)
		if a >= 0 && b >= 0 && sum < 0 {
			return false
		}
		if a <= 0 && b <= 0 && sum > 0 {
			return false
		}
		if sum != Max && sum != Min && sum != a+b {
			return false
		}
		diff := SatSub(a, b)
		if diff != Max && diff != Min {
			if diff != a-b {
				return false
			}
		}
		prod := SatMul(a, b)
		if prod != Max && prod != Min {
			if b != 0 && (prod/b != a || prod%b != 0) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 5000})
	if err != nil {
		t.Error(err)
	}
}
