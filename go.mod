module imflow

go 1.22
