# Correctness-tooling entry points. CI (.github/workflows/ci.yml) runs the
# same commands; `make check` is the pre-push aggregate.

GO ?= go

.PHONY: build test race lint lint-baseline lint-accept vet fuzz audit fault-stress bench bench-smoke bench-serve bench-serve-smoke bench-fault bench-fault-smoke bench-http bench-http-smoke bench-diff profile check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector stress over the lock-free solver, its callers,
## the sharded serving layer, the HTTP front end, and the analysis
## framework's driver tests.
race:
	$(GO) test -race ./internal/maxflow/... ./internal/retrieval/... ./internal/serve/... ./internal/httpd/... ./internal/sim/... ./internal/fault/... ./internal/analysis/...

## lint: the repository's custom analyzers (microsfloat, satarith,
## atomicfield, lockguard, noalloc, directive, plus the module-level
## lockorder, ctxleak, and transitive noalloc) and a curated go vet set —
## see cmd/imflow-lint. `-json` emits the machine-readable record stream.
lint:
	$(GO) run ./cmd/imflow-lint ./...

## lint-baseline: the CI regression gate — fail only on findings that are
## new relative to the committed lint_baseline.json (matched by file,
## analyzer, and message, so line drift does not churn the gate).
lint-baseline:
	$(GO) run ./cmd/imflow-lint -baseline lint_baseline.json ./...

## lint-accept: rewrite lint_baseline.json with the current findings.
## Run after fixing findings (to shrink the baseline) or after a reviewed
## decision to tolerate a new one; the diff is part of the code review.
lint-accept:
	$(GO) run ./cmd/imflow-lint -json -baseline lint_baseline.json -accept ./...

vet:
	$(GO) vet ./...

## fuzz: short exploratory runs of both fuzz targets (seed corpora under
## testdata/fuzz/ always replay in plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzReadProblem -fuzztime=30s ./internal/encoding/
	$(GO) test -fuzz=FuzzSolverConsensus -fuzztime=30s ./internal/retrieval/
	$(GO) test -fuzz=FuzzDecodeQuery -fuzztime=30s ./internal/httpd/
	$(GO) test -fuzz=FuzzDecodeSubmit -fuzztime=30s ./internal/httpd/

## audit: re-run the solver tests with the imflow_audit build tag, arming
## the max-flow = min-cut certificate checks after every engine run.
audit:
	$(GO) test -tags imflow_audit ./internal/maxflow/... ./internal/retrieval/... ./internal/serve/... ./internal/integration/...

## fault-stress: the fault-injection stress gate — seeded chaos schedules
## through the simulator and the concurrent server under the race
## detector, then again with the audit tag so every degraded solve and
## failover re-solve carries a max-flow certificate.
fault-stress:
	$(GO) test -race -count=3 ./internal/fault/
	$(GO) test -race -count=3 -run 'Chaos|Failover|Fault|Drain|Deadline|PartialServe|Warm|Cache|Compact|Speculative|BatchPool' ./internal/sim/ ./internal/serve/ ./internal/retrieval/ ./internal/maxflow/...
	$(GO) test -race -count=3 -run 'Cancel|Disconnect|Shutdown|Shed|Stress|Deadline' ./internal/httpd/ ./internal/serve/
	$(GO) test -tags imflow_audit -run 'Chaos|Failover|Fault|PartialServe|Warm|Cache|Compact|Speculative|BatchPool' ./internal/sim/ ./internal/serve/ ./internal/integration/ ./internal/retrieval/ ./internal/maxflow/...

## bench: regenerate BENCH_retrieval.json — the steady-state integrated
## solve loop (ns/op, allocs/op, work counters) across every engine on the
## paper-scale grid. See EXPERIMENTS.md for the field reference.
bench:
	$(GO) run ./cmd/imflow-bench -out BENCH_retrieval.json

## bench-smoke: the small configuration CI runs on every push.
bench-smoke:
	$(GO) run ./cmd/imflow-bench -smoke -out BENCH_retrieval.json

## bench-serve: regenerate BENCH_serve.json — open-loop throughput of the
## concurrent serving layer (qps, latency percentiles, worker-scaling
## curve) against the timed sequential sim replay baseline.
bench-serve:
	$(GO) run ./cmd/imflow-serve-bench -out BENCH_serve.json

bench-serve-smoke:
	$(GO) run ./cmd/imflow-serve-bench -smoke -out BENCH_serve.json

## bench-fault: regenerate BENCH_fault.json — conserved-flow failover
## repair latency vs a fresh masked re-solve at 1..2 failed disks, and
## degraded serving throughput (qps, p99) at 0..2 failed disks.
bench-fault:
	$(GO) run ./cmd/imflow-serve-bench -fault -out BENCH_fault.json

bench-fault-smoke:
	$(GO) run ./cmd/imflow-serve-bench -fault -smoke -out BENCH_fault.json

## bench-http: regenerate BENCH_http.json — overload resilience of the
## HTTP front end: per shed policy, closed-loop calibration then steady /
## sustained-overload / flash-crowd phases against a live loopback server
## (offered vs served qps, shed rate, latency percentiles, evictions).
bench-http:
	$(GO) run ./cmd/imflow-serve-bench -http -out BENCH_http.json

bench-http-smoke:
	$(GO) run ./cmd/imflow-serve-bench -http -smoke -out BENCH_http.json

## profile: CPU + allocation profiles of the steady-state retrieval suite
## on one paper-scale cell, written under /tmp/imflow-prof for
## `go tool pprof`. The cell and repeat count keep the run under a minute
## while still exercising the CSR hot loops.
profile:
	mkdir -p /tmp/imflow-prof
	$(GO) run ./cmd/imflow-bench -n 60 -queries 10 -repeats 4 \
		-cpuprofile /tmp/imflow-prof/cpu.pprof -memprofile /tmp/imflow-prof/allocs.pprof \
		-out /tmp/imflow-prof/BENCH_retrieval.json
	@echo "profiles in /tmp/imflow-prof: go tool pprof /tmp/imflow-prof/cpu.pprof"

## bench-diff: run fresh benchmarks into a scratch directory and compare
## them against the committed BENCH files. Fails on a >25% ns/op (or qps)
## regression or any allocs/op regression for the sequential engines.
## Wall-clock gates assume the same machine as the committed baselines;
## CI uses the machine-independent -allocs-only mode instead.
bench-diff:
	$(GO) run ./cmd/imflow-bench -out /tmp/imflow-bench-new/BENCH_retrieval.json
	$(GO) run ./cmd/imflow-serve-bench -out /tmp/imflow-bench-new/BENCH_serve.json
	$(GO) run ./cmd/imflow-serve-bench -fault -out /tmp/imflow-bench-new/BENCH_fault.json
	$(GO) run ./cmd/imflow-serve-bench -http -out /tmp/imflow-bench-new/BENCH_http.json
	$(GO) run ./cmd/imflow-bench-diff \
		-old BENCH_retrieval.json -new /tmp/imflow-bench-new/BENCH_retrieval.json \
		-old-serve BENCH_serve.json -new-serve /tmp/imflow-bench-new/BENCH_serve.json \
		-old-fault BENCH_fault.json -new-fault /tmp/imflow-bench-new/BENCH_fault.json \
		-old-http BENCH_http.json -new-http /tmp/imflow-bench-new/BENCH_http.json

check: build vet lint-baseline test audit race
