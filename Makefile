# Correctness-tooling entry points. CI (.github/workflows/ci.yml) runs the
# same commands; `make check` is the pre-push aggregate.

GO ?= go

.PHONY: build test race lint vet fuzz audit bench bench-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race-detector stress over the lock-free solver and its callers.
race:
	$(GO) test -race ./internal/maxflow/... ./internal/retrieval/...

## lint: the repository's custom analyzers (microsfloat, atomicfield)
## plus a curated go vet set — see cmd/imflow-lint.
lint:
	$(GO) run ./cmd/imflow-lint ./...

vet:
	$(GO) vet ./...

## fuzz: short exploratory runs of both fuzz targets (seed corpora under
## testdata/fuzz/ always replay in plain `make test`).
fuzz:
	$(GO) test -fuzz=FuzzReadProblem -fuzztime=30s ./internal/encoding/
	$(GO) test -fuzz=FuzzSolverConsensus -fuzztime=30s ./internal/retrieval/

## audit: re-run the solver tests with the imflow_audit build tag, arming
## the max-flow = min-cut certificate checks after every engine run.
audit:
	$(GO) test -tags imflow_audit ./internal/maxflow/... ./internal/retrieval/...

## bench: regenerate BENCH_retrieval.json — the steady-state integrated
## solve loop (ns/op, allocs/op, work counters) across every engine on the
## paper-scale grid. See EXPERIMENTS.md for the field reference.
bench:
	$(GO) run ./cmd/imflow-bench -out BENCH_retrieval.json

## bench-smoke: the small configuration CI runs on every push.
bench-smoke:
	$(GO) run ./cmd/imflow-bench -smoke -out BENCH_retrieval.json

check: build vet lint test audit race
