// Bottleneck: "why is this query slow, and what should I upgrade?" —
// the min-cut-grounded diagnosis a storage operator gets from the library.
//
// The scenario: a two-site system where site 2's fast SSDs hold the second
// copy of everything, except one unlucky region of the grid whose replicas
// both live on slow HDDs. The diagnosis names exactly the disks and
// buckets that pin the response time, and the example then "upgrades" the
// binding disks to show the predicted improvement materialize.
//
// Run with:
//
//	go run ./examples/bottleneck
package main

import (
	"fmt"
	"log"

	"imflow/internal/cost"
	"imflow/internal/retrieval"
)

func main() {
	// Disks 0-3: Barracudas (13.2 ms). Disks 4-7: X25-E SSDs (0.2 ms).
	disks := make([]retrieval.DiskParams, 8)
	for j := 0; j < 4; j++ {
		disks[j] = retrieval.DiskParams{Service: cost.FromMillis(13.2)}
	}
	for j := 4; j < 8; j++ {
		disks[j] = retrieval.DiskParams{Service: cost.FromMillis(0.2), Delay: cost.FromMillis(1)}
	}
	// 12 buckets; buckets 0-9 have an SSD copy, buckets 10-11 are the
	// unlucky region replicated on HDDs only.
	problem := &retrieval.Problem{Disks: disks}
	for i := 0; i < 10; i++ {
		problem.Replicas = append(problem.Replicas, []int{i % 4, 4 + i%4})
	}
	problem.Replicas = append(problem.Replicas, []int{0, 1}, []int{2, 3})

	b, sched, err := retrieval.ExplainBottleneck(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal response time: %v\n", sched.ResponseTime)
	fmt.Printf("binding disks:   %v\n", b.Disks)
	fmt.Printf("binding buckets: %v (replicated on HDDs only)\n\n", b.Buckets)

	// Upgrade the binding disks to Cheetahs and re-solve.
	upgraded := &retrieval.Problem{
		Disks:    append([]retrieval.DiskParams(nil), problem.Disks...),
		Replicas: problem.Replicas,
	}
	for _, d := range b.Disks {
		upgraded.Disks[d].Service = cost.FromMillis(6.1)
	}
	res, err := retrieval.NewPRBinary().Solve(upgraded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after upgrading disks %v to 6.1 ms: response %v (was %v)\n",
		b.Disks, res.Schedule.ResponseTime, sched.ResponseTime)

	// Alternatively, add an SSD replica for the binding buckets.
	replicated := &retrieval.Problem{Disks: problem.Disks}
	for i, reps := range problem.Replicas {
		r := append([]int(nil), reps...)
		for _, bi := range b.Buckets {
			if i == bi {
				r = append(r, 4+i%4)
			}
		}
		replicated.Replicas = append(replicated.Replicas, r)
	}
	res2, err := retrieval.NewPRBinary().Solve(replicated)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adding SSD replicas for buckets %v: response %v\n",
		b.Buckets, res2.Schedule.ResponseTime)
}
