// Multisite: the paper's motivating scenario (Section II-A) — a dataset
// declustered over two geographically distant storage arrays, one
// SSD-based and one HDD-based, queried with spatial range queries.
//
// The example builds Experiment 2's system (site 1 all-SSD, site 2
// all-HDD) at N = 20 disks per site, declusters a 20x20 grid with an
// orthogonal allocation, and retrieves a batch of range queries, showing
// how the optimal scheduler splits each query between the fast remote
// SSDs and the slower local HDDs — and what the greedy heuristic loses.
//
// Run with:
//
//	go run ./examples/multisite
package main

import (
	"fmt"
	"log"

	"imflow/internal/bench"
	"imflow/internal/cost"
	"imflow/internal/decluster"
	"imflow/internal/experiment"
	"imflow/internal/grid"
	"imflow/internal/query"
	"imflow/internal/retrieval"
	"imflow/internal/storage"
	"imflow/internal/xrand"
)

func main() {
	const n = 20
	rng := xrand.New(7)

	exp, err := storage.ExperimentByNum(2) // site 1: SSD pool, site 2: HDD pool
	if err != nil {
		log.Fatal(err)
	}
	sys := exp.Build(n, rng)
	g := grid.New(n)
	alloc := decluster.Orthogonal(g)
	gen := query.NewGenerator(g, query.Range, query.Load1)

	fmt.Printf("system: %d sites x %d disks; site 1 models SSD, site 2 HDD\n", sys.Sites, n)
	fmt.Printf("allocation: %s (every disk pair appears exactly once: %v)\n\n",
		alloc.Scheme, alloc.PairsUnique())

	problems := make([]*retrieval.Problem, 50)
	for i := range problems {
		problems[i] = experiment.BuildProblem(sys, alloc, gen.Query(rng))
	}

	optimal := retrieval.NewPRBinary()
	greedy := retrieval.NewGreedy()
	mOpt, err := bench.MeasureSolver(optimal, problems)
	if err != nil {
		log.Fatal(err)
	}
	mGreedy, err := bench.MeasureSolver(greedy, problems)
	if err != nil {
		log.Fatal(err)
	}

	var optTotal, greedyTotal cost.Micros
	var site1Blocks, site2Blocks int64
	for i := range problems {
		optTotal = cost.SatAdd(optTotal, mOpt.Responses[i])
		greedyTotal = cost.SatAdd(greedyTotal, mGreedy.Responses[i])
	}
	// Where does the optimal schedule send the blocks?
	for _, p := range problems {
		res, err := optimal.Solve(p)
		if err != nil {
			log.Fatal(err)
		}
		for j, k := range res.Schedule.Counts {
			if j < n {
				site1Blocks += k
			} else {
				site2Blocks += k
			}
		}
	}

	fmt.Printf("%d range queries (load 1):\n", len(problems))
	fmt.Printf("  optimal total response  %10.1f ms (avg %.2f ms/query, decision %.3f ms/query)\n",
		optTotal.Millis(), optTotal.Millis()/float64(len(problems)), mOpt.AvgMs())
	fmt.Printf("  greedy  total response  %10.1f ms (avg %.2f ms/query)\n",
		greedyTotal.Millis(), greedyTotal.Millis()/float64(len(problems)))
	fmt.Printf("  greedy penalty: %.1f%% slower than optimal\n\n",
		100*(greedyTotal.Millis()/optTotal.Millis()-1))
	fmt.Printf("optimal block placement: %d blocks on the SSD site, %d on the HDD site\n",
		site1Blocks, site2Blocks)
	fmt.Println("(the scheduler leans on the SSDs but still uses HDDs where their copy wins)")
}
