// Parallelspeedup: Section V of the paper — the retrieval decision is on
// the query's critical path, so new-generation multicore storage arrays
// can spend extra cores to shave it. This example times the integrated
// push-relabel solver sequentially and with the lock-free parallel engine
// at 1, 2, 4 and 8 threads on large Experiment 5 instances, printing the
// per-thread-count speedup.
//
// Run with:
//
//	go run ./examples/parallelspeedup
package main

import (
	"fmt"
	"log"
	"runtime"

	"imflow/internal/bench"
	"imflow/internal/experiment"
	"imflow/internal/query"
	"imflow/internal/retrieval"
)

func main() {
	cfg := experiment.Config{
		ExpNum:  5,
		Alloc:   experiment.Orthogonal,
		Type:    query.Arbitrary,
		Load:    query.Load1, // large queries: ~N^2/2 buckets each
		N:       60,
		Queries: 20,
		Seed:    5,
	}
	inst, err := cfg.Build()
	if err != nil {
		log.Fatal(err)
	}
	var total int
	for _, p := range inst.Problems {
		total += p.QuerySize()
	}
	fmt.Printf("cell %s: %d queries, avg |Q| = %d buckets, %d cores available\n\n",
		cfg, len(inst.Problems), total/len(inst.Problems), runtime.NumCPU())

	seq, err := bench.MeasureSolver(retrieval.NewPRBinary(), inst.Problems)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-26s %8.3f ms/query\n", "sequential pr-binary", seq.AvgMs())
	for _, threads := range []int{1, 2, 4, 8} {
		par, err := bench.MeasureSolver(retrieval.NewPRBinaryParallel(threads), inst.Problems)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-26s %8.3f ms/query  speedup vs sequential: %.2fx\n",
			par.Solver, par.AvgMs(), seq.AvgMs()/par.AvgMs())
	}
	fmt.Println("\n(the paper reports up to 1.7x, ~1.2x on average, with two threads;")
	fmt.Println(" small queries parallelize poorly — the speedup is a large-|Q| effect)")
}
