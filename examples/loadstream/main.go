// Loadstream: where the initial loads X_j come from. The generalized
// retrieval problem's X_j parameter is the time a disk needs to drain the
// queue left by *previous* queries — this example makes that concrete by
// replaying a bursty query stream through the event-driven storage
// simulator, scheduling each arrival with the live per-disk backlogs.
//
// Several schedulers replay the identical stream side by side: the
// integrated push-relabel optimum, the black-box baseline (same schedules,
// slower decisions), and the greedy heuristic (faster decisions, worse
// schedules). Because the optimal scheduler balances the backlog it leaves
// behind, its advantage compounds over the stream.
//
// Run with:
//
//	go run ./examples/loadstream
package main

import (
	"fmt"
	"log"

	"imflow/internal/cost"
	"imflow/internal/decluster"
	"imflow/internal/grid"
	"imflow/internal/query"
	"imflow/internal/retrieval"
	"imflow/internal/sim"
	"imflow/internal/stats"
	"imflow/internal/storage"
	"imflow/internal/xrand"
)

func main() {
	const (
		n        = 16
		nQueries = 120
	)
	rng := xrand.New(99)

	exp, err := storage.ExperimentByNum(4) // mixed SSD+HDD arrays on both sites
	if err != nil {
		log.Fatal(err)
	}
	sys := exp.Build(n, rng)
	g := grid.New(n)

	spec := sim.StreamSpec{
		System:   sys,
		Alloc:    decluster.Dependent(g, sys.Sites),
		Type:     query.Arbitrary,
		Load:     query.Load3,
		Arrivals: sim.PoissonArrivals{Mean: cost.FromMillis(2.5)},
		Queries:  nQueries,
		Seed:     7,
	}
	stream, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}

	comps, err := sim.Compare(sys, stream,
		sim.SolverScheduler{Solver: retrieval.NewPRBinary()},
		sim.SolverScheduler{Solver: retrieval.NewPRBinaryBlackBox()},
		sim.SolverScheduler{Solver: retrieval.NewGreedy()},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d %s queries over %d disks (2 sites, mixed SSD+HDD)\n\n",
		nQueries, spec.Arrivals.Name(), sys.NumDisks())
	fmt.Printf("  %-22s %10s %10s %14s\n", "scheduler", "mean ms", "p95 ms", "mean util")
	for _, c := range comps {
		fmt.Printf("  %-22s %10.2f %10.2f %13.1f%%\n",
			c.Scheduler, c.MeanMs, c.P95Ms, 100*stats.Mean(c.Utilization))
	}

	opt, greedy := comps[0], comps[2]
	fmt.Printf("\ngreedy/optimal mean response ratio: %.2fx\n", greedy.MeanMs/opt.MeanMs)
	fmt.Println("(pr-binary and pr-binary-blackbox are both per-query optimal; their")
	fmt.Println(" streams can still diverge because optimal schedules are not unique —")
	fmt.Println(" different tie-breaking leaves different backlogs for later queries)")

	fmt.Println("\nsample of per-query response times (ms):")
	fmt.Printf("  %-8s%12s%12s\n", "query", "optimal", "greedy")
	for i := 0; i < nQueries; i += nQueries / 10 {
		fmt.Printf("  %-8d%12.2f%12.2f\n",
			i, opt.Responses[i].Millis(), greedy.Responses[i].Millis())
	}
}
