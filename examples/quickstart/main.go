// Quickstart: solve one generalized optimal response time retrieval
// problem end to end.
//
// The scenario is the paper's running example (Table II / Figure 4): a
// 3x2 range query whose six buckets are replicated across two sites — a
// homogeneous Raptor array at site 1 and a mixed Cheetah/Barracuda array
// at site 2 — with per-site network delays and one busy disk.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"imflow/internal/cost"
	"imflow/internal/retrieval"
)

func main() {
	// 14 disks: 0-6 at site 1 (Raptor, 8.3 ms, 2 ms away, 1 ms backlog),
	// 7-13 at site 2 (1 ms away; mostly Cheetah at 6.1 ms, three slower
	// Barracudas at 13.2 ms) — the parameters of the paper's Table II.
	disks := make([]retrieval.DiskParams, 14)
	for j := 0; j <= 6; j++ {
		disks[j] = retrieval.DiskParams{
			Service: cost.FromMillis(8.3),
			Delay:   cost.FromMillis(2),
			Load:    cost.FromMillis(1),
		}
	}
	for _, j := range []int{7, 8, 10, 13} {
		disks[j] = retrieval.DiskParams{Service: cost.FromMillis(6.1), Delay: cost.FromMillis(1)}
	}
	for _, j := range []int{9, 11, 12} {
		disks[j] = retrieval.DiskParams{Service: cost.FromMillis(13.2), Delay: cost.FromMillis(1)}
	}

	// Query q1's six buckets with their replica disks (first copy at
	// site 1, second copy at site 2), read off Figure 2 of the paper.
	problem := &retrieval.Problem{
		Disks: disks,
		Replicas: [][]int{
			{0, 10}, // bucket [0,0]
			{3, 13}, // bucket [0,1]
			{5, 8},  // bucket [1,0]
			{1, 11}, // bucket [1,1]
			{3, 9},  // bucket [2,0]
			{0, 12}, // bucket [2,1]
		},
	}

	fmt.Println("solving with every algorithm in the repository:")
	solvers := []retrieval.Solver{
		retrieval.NewGreedy(), // heuristic baseline, not optimal
		retrieval.NewFFIncremental(),
		retrieval.NewPRIncremental(),
		retrieval.NewPRBinaryBlackBox(),
		retrieval.NewPRBinary(),
		retrieval.NewPRBinaryParallel(2),
	}
	for _, s := range solvers {
		res, err := s.Solve(problem)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		fmt.Printf("  %-22s response %7.3f ms  assignment %v\n",
			s.Name(), res.Schedule.ResponseTime.Millis(), res.Schedule.Assignment)
	}

	res, err := retrieval.NewPRBinary().Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal schedule detail (pr-binary):")
	for i, d := range res.Schedule.Assignment {
		fmt.Printf("  bucket %d <- disk %2d (completes at %v with %d block(s) on the disk)\n",
			i, d, problem.Disks[d].Finish(res.Schedule.Counts[d]), res.Schedule.Counts[d])
	}
	fmt.Printf("optimal response time: %v\n", res.Schedule.ResponseTime)
	fmt.Printf("solver work: %d max-flow runs, %d capacity increments, %d binary steps\n",
		res.Stats.MaxflowRuns, res.Stats.Increments, res.Stats.BinarySteps)
}
