// Package imflow is an implementation of "Integrated Maximum Flow
// Algorithm for Optimal Response Time Retrieval of Replicated Data"
// (Altiparmak & Tosun, ICPP 2012).
//
// Given a query over buckets replicated across heterogeneous, multi-site
// disk arrays with network delays and initial loads, the library computes
// the retrieval schedule minimizing the query's response time. The
// package-level API re-exports the core types and solver constructors; the
// substrates (declustering schemes, workload generators, max-flow engines,
// the storage simulator, and the benchmark harness that regenerates the
// paper's figures) live in the internal packages and the cmd/ binaries.
//
// Quick use:
//
//	p := &imflow.Problem{
//	    Disks: []imflow.DiskParams{
//	        {Service: imflow.FromMillis(6.1)},
//	        {Service: imflow.FromMillis(0.2), Delay: imflow.FromMillis(1)},
//	    },
//	    Replicas: [][]int{{0, 1}, {0}, {1}},
//	}
//	res, err := imflow.NewPRBinary().Solve(p)
//	// res.Schedule.Assignment, res.Schedule.ResponseTime
//
// Solver selection:
//
//   - NewPRBinary: the paper's contribution (Algorithm 6) — integrated
//     push-relabel with binary capacity scaling and flow conservation.
//     Use this one.
//   - NewPRBinaryParallel: the same with the lock-free multithreaded
//     push-relabel engine of Section V.
//   - NewPRBinaryBlackBox: the prior-work baseline ([12]) that re-runs
//     max-flow from zero flow at every capacity setting.
//   - NewPRIncremental (Algorithm 5), NewFFIncremental (Algorithm 2),
//     NewFFBasic (Algorithm 1, basic/homogeneous problem only): the other
//     algorithms of the paper.
//   - NewOracle: slow, obviously-correct reference solver.
//   - NewGreedy: fast non-optimal heuristic baseline.
package imflow

import (
	"imflow/internal/cost"
	"imflow/internal/retrieval"
)

// Core problem/solution types (see internal/retrieval for details).
type (
	// Problem is one instance of the generalized optimal response time
	// retrieval problem.
	Problem = retrieval.Problem
	// DiskParams are a disk's scheduling parameters: service time C_j,
	// network delay D_j, initial load X_j.
	DiskParams = retrieval.DiskParams
	// Schedule is a retrieval decision with its response time.
	Schedule = retrieval.Schedule
	// Result bundles a schedule with the solver's work counters.
	Result = retrieval.Result
	// Stats reports the work a solver performed.
	Stats = retrieval.Stats
	// Solver computes optimal response time schedules.
	Solver = retrieval.Solver
	// DiskMask is the set of failed disks of a system; masked solves route
	// around it (see FailoverSolver).
	DiskMask = retrieval.DiskMask
	// FailoverSolver is a solver that handles disk failures: degraded
	// (masked) solves with partial retrieval, and in-place MarkFailed
	// failover that conserves all flow not routed through the failed disk.
	FailoverSolver = retrieval.FailoverSolver
	// InfeasibleError names the buckets a degraded solve had to drop
	// because every replica was on a failed disk.
	InfeasibleError = retrieval.InfeasibleError
	// Micros is the integer-microsecond time unit used throughout.
	Micros = cost.Micros
)

// ErrInfeasible is the sentinel every infeasibility error wraps; match
// with errors.Is. Degraded solves that drop buckets return an
// *InfeasibleError (which wraps it) alongside a valid partial schedule.
var ErrInfeasible = retrieval.ErrInfeasible

// NewDiskMask returns an all-healthy failure mask over numDisks disks.
func NewDiskMask(numDisks int) *DiskMask { return retrieval.NewDiskMask(numDisks) }

// FromMillis converts (possibly fractional) milliseconds to Micros.
func FromMillis(ms float64) Micros { return cost.FromMillis(ms) }

// NewPRBinary returns the integrated push-relabel solver with binary
// capacity scaling (Algorithm 6) — the paper's headline algorithm.
func NewPRBinary() Solver { return retrieval.NewPRBinary() }

// NewPRBinaryParallel returns Algorithm 6 backed by the lock-free
// multithreaded push-relabel engine with the given worker count.
func NewPRBinaryParallel(threads int) Solver { return retrieval.NewPRBinaryParallel(threads) }

// NewPRBinaryBlackBox returns the black-box baseline of the paper's
// reference [12]: identical search, but every max-flow run starts from
// zero flow.
func NewPRBinaryBlackBox() Solver { return retrieval.NewPRBinaryBlackBox() }

// NewPRIncremental returns the integrated push-relabel solver without
// binary scaling (Algorithm 5).
func NewPRIncremental() Solver { return retrieval.NewPRIncremental() }

// NewFFIncremental returns the integrated Ford-Fulkerson solver for the
// generalized problem (Algorithm 2).
func NewFFIncremental() Solver { return retrieval.NewFFIncremental() }

// NewFFBasic returns the Ford-Fulkerson solver for the basic
// (homogeneous, no-delay, no-load) problem (Algorithm 1).
func NewFFBasic() Solver { return retrieval.NewFFBasic() }

// NewOracle returns the reference solver used for cross-validation.
func NewOracle() Solver { return retrieval.NewOracle() }

// NewGreedy returns the fast non-optimal heuristic baseline.
func NewGreedy() Solver { return retrieval.NewGreedy() }

// Bottleneck describes which disks and buckets pin a query's optimal
// response time.
type Bottleneck = retrieval.Bottleneck

// ExplainBottleneck solves the problem and diagnoses its bottleneck: the
// binding disks (whose next block completion defines the response time)
// and the buckets confined to them.
func ExplainBottleneck(p *Problem) (*Bottleneck, *Schedule, error) {
	return retrieval.ExplainBottleneck(p)
}

// Solvers returns every generalized-problem solver keyed by name.
func Solvers(threads int) map[string]Solver {
	out := map[string]Solver{}
	for k, v := range retrieval.Solvers(threads) {
		out[k] = v
	}
	out["greedy"] = retrieval.NewGreedy()
	return out
}
