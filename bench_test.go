// Benchmarks regenerating each of the paper's evaluation artifacts in
// testing.B form, one benchmark (family) per table and figure, plus
// ablation benches for the design choices DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// These operate at reduced scale so the whole suite finishes in minutes;
// cmd/figures sweeps the paper's full N=10..100 x 1000-query grid.
package imflow_test

import (
	"fmt"
	"testing"

	"imflow/internal/experiment"
	"imflow/internal/flowgraph"
	"imflow/internal/grid"
	"imflow/internal/maxflow"
	"imflow/internal/maxflow/parallel"
	"imflow/internal/query"
	"imflow/internal/retrieval"
	"imflow/internal/xrand"
)

// buildCell materializes one evaluation cell, failing the benchmark on
// error.
func buildCell(b *testing.B, expNum int, alloc experiment.AllocKind, typ query.Type,
	load query.Load, n, queries int) []*retrieval.Problem {
	b.Helper()
	cfg := experiment.Config{
		ExpNum: expNum, Alloc: alloc, Type: typ, Load: load,
		N: n, Queries: queries, Seed: 1,
	}
	inst, err := cfg.Build()
	if err != nil {
		b.Fatal(err)
	}
	return inst.Problems
}

// solveBatch runs the solver over the batch once per iteration.
func solveBatch(b *testing.B, s retrieval.Solver, problems []*retrieval.Problem) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range problems {
			if _, err := s.Solve(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table III / Table IV -------------------------------------------------
// The tables are constants pinned by unit tests
// (storage.TestCatalogMatchesTableIII, storage.TestExperimentsMatchTableIV);
// BenchmarkTableIVInstantiation measures how fast a Table IV system builds.

func BenchmarkTableIVInstantiation(b *testing.B) {
	for exp := 1; exp <= 5; exp++ {
		b.Run(fmt.Sprintf("exp%d", exp), func(b *testing.B) {
			cfg := experiment.Config{
				ExpNum: exp, Alloc: experiment.Orthogonal,
				Type: query.Range, Load: query.Load3,
				N: 20, Queries: 10, Seed: 1,
			}
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 5: Exp 1, RDA, Ford-Fulkerson (Alg 1) vs Push-relabel (Alg 6) --

func BenchmarkFig5(b *testing.B) {
	panels := []struct {
		name string
		typ  query.Type
		load query.Load
	}{
		{"RangeLoad1", query.Range, query.Load1},
		{"ArbitraryLoad2", query.Arbitrary, query.Load2},
		{"RangeLoad3", query.Range, query.Load3},
	}
	for _, pn := range panels {
		problems := buildCell(b, 1, experiment.RDA, pn.typ, pn.load, 20, 10)
		b.Run(pn.name+"/ford-fulkerson", func(b *testing.B) {
			solveBatch(b, retrieval.NewFFBasic(), problems)
		})
		b.Run(pn.name+"/push-relabel", func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinary(), problems)
		})
	}
}

// --- Figure 6: Exp 5, Orthogonal, FF (Alg 2) vs PR (Alg 6) -----------------

func BenchmarkFig6(b *testing.B) {
	panels := []struct {
		name string
		typ  query.Type
		load query.Load
	}{
		{"ArbitraryLoad1", query.Arbitrary, query.Load1},
		{"RangeLoad2", query.Range, query.Load2},
		{"ArbitraryLoad3", query.Arbitrary, query.Load3},
	}
	for _, pn := range panels {
		problems := buildCell(b, 5, experiment.Orthogonal, pn.typ, pn.load, 20, 10)
		b.Run(pn.name+"/ford-fulkerson", func(b *testing.B) {
			solveBatch(b, retrieval.NewFFIncremental(), problems)
		})
		b.Run(pn.name+"/push-relabel", func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinary(), problems)
		})
	}
}

// --- Figure 7: Exp 1, black box vs integrated PR per allocation ------------

func BenchmarkFig7(b *testing.B) {
	for _, alloc := range experiment.AllKinds {
		problems := buildCell(b, 1, alloc, query.Range, query.Load1, 20, 10)
		b.Run(alloc.String()+"/blackbox", func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinaryBlackBox(), problems)
		})
		b.Run(alloc.String()+"/integrated", func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinary(), problems)
		})
	}
}

// --- Figure 8: Exp 3, Arbitrary Load 1, BB vs integrated per allocation ----

func BenchmarkFig8(b *testing.B) {
	for _, alloc := range experiment.AllKinds {
		problems := buildCell(b, 3, alloc, query.Arbitrary, query.Load1, 20, 10)
		b.Run(alloc.String()+"/blackbox", func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinaryBlackBox(), problems)
		})
		b.Run(alloc.String()+"/integrated", func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinary(), problems)
		})
	}
}

// --- Figure 9: Exp 5 (hardest case), BB vs integrated, arbitrary loads -----

func BenchmarkFig9(b *testing.B) {
	for _, load := range []query.Load{query.Load1, query.Load2, query.Load3} {
		problems := buildCell(b, 5, experiment.Orthogonal, query.Arbitrary, load, 20, 10)
		b.Run(fmt.Sprintf("%s/blackbox", load), func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinaryBlackBox(), problems)
		})
		b.Run(fmt.Sprintf("%s/integrated", load), func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinary(), problems)
		})
	}
}

// --- Figure 10: Exp 5, parallel vs sequential integrated PR ----------------

func BenchmarkFig10(b *testing.B) {
	problems := buildCell(b, 5, experiment.Orthogonal, query.Arbitrary, query.Load1, 40, 5)
	b.Run("sequential", func(b *testing.B) {
		solveBatch(b, retrieval.NewPRBinary(), problems)
	})
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel-%dthreads", threads), func(b *testing.B) {
			solveBatch(b, retrieval.NewPRBinaryParallel(threads), problems)
		})
	}
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationEngines compares raw max-flow engines on a
// retrieval-shaped network (DESIGN.md: why push-relabel over the
// alternatives).
func BenchmarkAblationEngines(b *testing.B) {
	build := func() (*flowgraph.Graph, int, int) {
		rng := xrand.New(3)
		q, nd := 800, 40
		g := flowgraph.New(q + nd + 2)
		s, t := 0, q+nd+1
		for i := 0; i < q; i++ {
			g.AddEdge(s, 1+i, 1)
			g.AddEdge(1+i, 1+q+rng.Intn(nd/2), 1)
			g.AddEdge(1+i, 1+q+nd/2+rng.Intn(nd/2), 1)
		}
		for d := 0; d < nd; d++ {
			g.AddEdge(1+q+d, t, int64(q/nd)+1)
		}
		return g, s, t
	}
	engines := []struct {
		name string
		mk   func(*flowgraph.Graph) maxflow.Engine
	}{
		{"ford-fulkerson", func(g *flowgraph.Graph) maxflow.Engine { return maxflow.NewFordFulkerson(g) }},
		{"edmonds-karp", func(g *flowgraph.Graph) maxflow.Engine { return maxflow.NewEdmondsKarp(g) }},
		{"dinic", func(g *flowgraph.Graph) maxflow.Engine { return maxflow.NewDinic(g) }},
		{"push-relabel-fifo", func(g *flowgraph.Graph) maxflow.Engine { return maxflow.NewPushRelabel(g) }},
		{"push-relabel-highest", func(g *flowgraph.Graph) maxflow.Engine { return maxflow.NewHighestLabel(g) }},
		{"parallel-2", func(g *flowgraph.Graph) maxflow.Engine { return parallel.New(g, 2) }},
	}
	for _, e := range engines {
		b.Run(e.name, func(b *testing.B) {
			g, s, t := build()
			engine := e.mk(g)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ZeroFlows()
				engine.Run(s, t)
			}
		})
	}
}

// BenchmarkAblationGlobalRelabel measures the sequential push-relabel
// engine with periodic global relabeling on vs exact-init-only
// (DESIGN.md: the exact-height heuristic of [19]).
func BenchmarkAblationGlobalRelabel(b *testing.B) {
	build := func() (*flowgraph.Graph, int, int) {
		rng := xrand.New(9)
		q, nd := 600, 30
		g := flowgraph.New(q + nd + 2)
		s, t := 0, q+nd+1
		for i := 0; i < q; i++ {
			g.AddEdge(s, 1+i, 1)
			g.AddEdge(1+i, 1+q+rng.Intn(nd), 1)
			g.AddEdge(1+i, 1+q+rng.Intn(nd), 1)
		}
		for d := 0; d < nd; d++ {
			// Deliberately tight sink capacities: much of the preflow must
			// return to the source, the regime the heuristics exist for.
			g.AddEdge(1+q+d, t, int64(q/(2*nd)))
		}
		return g, s, t
	}
	for _, cfg := range []struct {
		name     string
		interval int
	}{
		{"periodic-default", 0},
		{"init-only", -1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			g, s, t := build()
			pr := maxflow.NewPushRelabel(g)
			pr.GlobalRelabelInterval = cfg.interval
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.ZeroFlows()
				pr.Run(s, t)
			}
		})
	}
}

// BenchmarkAblationGreedyGap quantifies the price of optimality: greedy
// decision time vs the integrated solver on the same batch.
func BenchmarkAblationGreedyGap(b *testing.B) {
	problems := buildCell(b, 5, experiment.Orthogonal, query.Arbitrary, query.Load1, 20, 10)
	b.Run("greedy", func(b *testing.B) {
		solveBatch(b, retrieval.NewGreedy(), problems)
	})
	b.Run("pr-binary", func(b *testing.B) {
		solveBatch(b, retrieval.NewPRBinary(), problems)
	})
}

// BenchmarkAblationVertexSelection compares the paper's FIFO ordering with
// the highest-label ordering inside the full integrated solver.
func BenchmarkAblationVertexSelection(b *testing.B) {
	problems := buildCell(b, 5, experiment.Orthogonal, query.Arbitrary, query.Load2, 20, 10)
	b.Run("fifo", func(b *testing.B) {
		solveBatch(b, retrieval.NewPRBinary(), problems)
	})
	b.Run("highest-label", func(b *testing.B) {
		solveBatch(b, retrieval.NewPRBinaryHighestLabel(), problems)
	})
}

// BenchmarkAblationIncrementalVsBinary isolates the value of binary
// capacity scaling: Algorithm 5 (pure incremental) vs Algorithm 6.
func BenchmarkAblationIncrementalVsBinary(b *testing.B) {
	problems := buildCell(b, 5, experiment.RDA, query.Arbitrary, query.Load2, 20, 10)
	b.Run("incremental-alg5", func(b *testing.B) {
		solveBatch(b, retrieval.NewPRIncremental(), problems)
	})
	b.Run("binary-alg6", func(b *testing.B) {
		solveBatch(b, retrieval.NewPRBinary(), problems)
	})
}

// BenchmarkQueryGeneration measures the workload generators.
func BenchmarkQueryGeneration(b *testing.B) {
	gens := []struct {
		typ  query.Type
		load query.Load
	}{
		{query.Range, query.Load1},
		{query.Arbitrary, query.Load1},
		{query.Arbitrary, query.Load3},
	}
	for _, gc := range gens {
		b.Run(fmt.Sprintf("%s-%s", gc.typ, gc.load), func(b *testing.B) {
			g := grid.New(50)
			gen := query.NewGenerator(g, gc.typ, gc.load)
			rng := xrand.New(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gen.Query(rng)
			}
		})
	}
}
