// Command imflow-serve-bench runs the serving-layer throughput benchmark:
// per paper-scale cell, a sequential replay baseline, a bit-exactness
// cross-check of the server's deterministic single-shard mode, a
// saturation throughput run per worker count (queries/sec, p50/p95/p99
// latency, worker-scaling curve), and a hot repeated-query workload
// measured with and without the per-worker solve cache, written as
// BENCH_serve.json.
//
// With -fault it runs the fault-injection suite instead: per cell, the
// conserved-flow failover repair timed against a fresh masked re-solve at
// 1..2 failed disks, and degraded serving throughput (queries/sec, p99)
// at 0..2 failed disks, written as BENCH_fault.json.
//
// With -http it runs the overload suite instead: per cell and shed
// policy, a live httpd front end on a loopback listener is calibrated
// closed-loop, then offered steady (0.5x), sustained-overload (2x), and
// flash-crowd phases open-loop, written as BENCH_http.json.
//
// Usage:
//
//	imflow-serve-bench                          # paper-scale cells, writes BENCH_serve.json
//	imflow-serve-bench -smoke                   # one tiny cell (CI benchmark smoke)
//	imflow-serve-bench -n 20 -workers 1,2,4,8   # custom sweep
//	imflow-serve-bench -fault                   # fault suite, writes BENCH_fault.json
//	imflow-serve-bench -http                    # overload suite, writes BENCH_http.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"imflow/internal/bench"
)

func main() {
	smoke := flag.Bool("smoke", false, "run the small CI smoke configuration")
	out := flag.String("out", "BENCH_serve.json", "output JSON path (- for stdout)")
	ns := flag.String("n", "", "comma-separated grid sizes (default 20,60)")
	workers := flag.String("workers", "", "comma-separated worker counts (default 1,2,4,8)")
	queries := flag.Int("queries", 0, "stream length per cell (default 400)")
	seed := flag.Uint64("seed", 0, "workload seed (default 42)")
	queueDepth := flag.Int("queue", 0, "per-shard admission queue bound (default 64)")
	batch := flag.Int("batch", 0, "max queries coalesced per worker wakeup (default 16)")
	expNum := flag.Int("exp", 0, "Table IV experiment number (default 2)")
	hotShapes := flag.Int("hot-shapes", 0, "recurring replica structures in the hot workload pool (default 8)")
	hotPercent := flag.Int("hot-percent", 0, "percent of hot-workload queries drawn from the pool (default 90)")
	cacheSize := flag.Int("cache", 0, "per-worker solve-cache entries for the cached hot run (default 512)")
	cacheQuantum := flag.Int("cache-quantum-us", 0, "cache-key busy-time quantization in microseconds (default 50000)")
	faultMode := flag.Bool("fault", false, "run the fault-injection suite instead (writes BENCH_fault.json)")
	maxFailed := flag.Int("max-failed", 0, "fault suite: sweep 0..max-failed failed disks (default 2)")
	httpMode := flag.Bool("http", false, "run the HTTP overload suite instead (writes BENCH_http.json)")
	policies := flag.String("policies", "", "http suite: comma-separated shed policies (default both)")
	phase := flag.Duration("phase", 0, "http suite: open-loop phase length (default 2s)")
	flag.Parse()

	if *faultMode {
		runFaultSuite(*smoke, *out, *ns, *workers, *queries, *seed, *queueDepth, *batch, *expNum, *maxFailed)
		return
	}
	if *httpMode {
		runHTTPSuite(*smoke, *out, *ns, *workers, *queries, *seed, *policies, *phase)
		return
	}

	var o bench.ServeOptions
	if *smoke {
		o = bench.SmokeServeOptions()
	}
	if *ns != "" {
		o.Ns = parseInts(*ns, "-n")
	}
	if *workers != "" {
		o.Workers = parseInts(*workers, "-workers")
	}
	if *queries > 0 {
		o.Queries = *queries
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	if *queueDepth > 0 {
		o.QueueDepth = *queueDepth
	}
	if *batch > 0 {
		o.Batch = *batch
	}
	if *expNum > 0 {
		o.ExpNum = *expNum
	}
	if *hotShapes > 0 {
		o.HotShapes = *hotShapes
	}
	if *hotPercent > 0 {
		o.HotPercent = *hotPercent
	}
	if *cacheSize > 0 {
		o.CacheSize = *cacheSize
	}
	if *cacheQuantum > 0 {
		o.CacheQuantumUs = *cacheQuantum
	}

	report, err := bench.RunServe(o)
	if err != nil {
		fatalf("%v", err)
	}
	writeReport(*out, report, len(report.Records))

	for _, r := range report.Records {
		fmt.Fprintf(os.Stderr, "%-28s %-16s workers=%d %9.0f q/s %8.0fus p50 %8.0fus p99 %5.0f%% warm %5.0f%% hits",
			r.Cell, r.Mode, r.Workers, r.QPS, r.P50LatencyUs, r.P99LatencyUs, r.WarmRate*100, r.CacheHitRate*100)
		if r.SpeedupVsUncached > 0 {
			fmt.Fprintf(os.Stderr, " %6.2fx vs uncached", r.SpeedupVsUncached)
		} else if r.SpeedupVsReplay > 0 {
			fmt.Fprintf(os.Stderr, " %6.2fx vs replay", r.SpeedupVsReplay)
		}
		fmt.Fprintln(os.Stderr)
	}
}

// runFaultSuite maps the shared flags onto the fault benchmark and writes
// BENCH_fault.json (unless -out overrides the path).
func runFaultSuite(smoke bool, out, ns, workers string, queries int, seed uint64, queueDepth, batch, expNum, maxFailed int) {
	var o bench.FaultOptions
	if smoke {
		o = bench.SmokeFaultOptions()
	}
	if ns != "" {
		o.Ns = parseInts(ns, "-n")
	}
	if workers != "" {
		ws := parseInts(workers, "-workers")
		o.Workers = ws[len(ws)-1] // the fault suite runs one worker count
	}
	if queries > 0 {
		o.Queries = queries
	}
	if seed != 0 {
		o.Seed = seed
	}
	if queueDepth > 0 {
		o.QueueDepth = queueDepth
	}
	if batch > 0 {
		o.Batch = batch
	}
	if expNum > 0 {
		o.ExpNum = expNum
	}
	if maxFailed > 0 {
		o.MaxFailed = maxFailed
	}
	if out == "BENCH_serve.json" {
		out = "BENCH_fault.json"
	}
	report, err := bench.RunFault(o)
	if err != nil {
		fatalf("%v", err)
	}
	writeReport(out, report, len(report.Records))

	for _, r := range report.Records {
		switch r.Mode {
		case "failover":
			fmt.Fprintf(os.Stderr, "%-28s failover       failed=%d %8.0f ns conserved %8.0f ns fresh %6.2fx speedup %8.0fus p99\n",
				r.Cell, r.FailedDisks, r.ConservedNsPerOp, r.FreshNsPerOp, r.SpeedupVsFresh, r.FailoverP99Us)
		case "serve-degraded":
			fmt.Fprintf(os.Stderr, "%-28s serve-degraded failed=%d %9.0f q/s %8.0fus p99 %6.2fx vs healthy %6d dropped\n",
				r.Cell, r.FailedDisks, r.QPS, r.P99LatencyUs, r.QPSvsHealthy, r.DroppedBuckets)
		}
	}
}

// runHTTPSuite maps the shared flags onto the overload benchmark and
// writes BENCH_http.json (unless -out overrides the path).
func runHTTPSuite(smoke bool, out, ns, workers string, queries int, seed uint64, policies string, phase time.Duration) {
	var o bench.HTTPOptions
	if smoke {
		o = bench.SmokeHTTPOptions()
	}
	if ns != "" {
		o.Ns = parseInts(ns, "-n")
	}
	if workers != "" {
		ws := parseInts(workers, "-workers")
		o.Workers = ws[len(ws)-1] // the http suite runs one shard count
	}
	if queries > 0 {
		o.Queries = queries
	}
	if seed != 0 {
		o.Seed = seed
	}
	if policies != "" {
		o.Policies = strings.Split(policies, ",")
	}
	if phase > 0 {
		o.PhaseDuration = phase
	}
	if out == "BENCH_serve.json" {
		out = "BENCH_http.json"
	}
	report, err := bench.RunHTTP(o)
	if err != nil {
		fatalf("%v", err)
	}
	writeReport(out, report, len(report.Records))

	for _, r := range report.Records {
		fmt.Fprintf(os.Stderr, "%-28s %-20s %-8s %8.0f offered/s %8.0f served/s %5.1f%% shed %8.0fus p99 %4d unanswered\n",
			r.Cell, r.Policy, r.Phase, r.OfferedQPS, r.AchievedQPS, 100*r.ShedRate, r.P99LatencyUs, r.Unanswered)
	}
}

// writeReport marshals any report to path (or stdout for "-").
func writeReport(out string, report any, records int) {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	blob = append(blob, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if dir := filepath.Dir(out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", out, records)
}

func parseInts(csv, flagName string) []int {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fatalf("bad %s element %q", flagName, f)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imflow-serve-bench: "+format+"\n", args...)
	os.Exit(1)
}
