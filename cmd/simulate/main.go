// Command simulate replays a synthetic query stream through the
// event-driven storage simulator, scheduling each arrival with a chosen
// solver against the live per-disk backlogs (the initial loads X_j of the
// generalized retrieval problem). It prints per-scheduler response-time
// statistics and a disk-utilization summary, making the response-time
// value of optimal scheduling visible — the motivation of the paper's
// Section II-A.
//
// Usage:
//
//	simulate -exp 4 -alloc dependent -type arbitrary -load 3 -n 16 \
//	         -queries 200 -interarrival 3 -algos pr-binary,greedy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"imflow/internal/cliutil"
	"imflow/internal/cost"
	"imflow/internal/decluster"
	"imflow/internal/experiment"
	"imflow/internal/grid"
	"imflow/internal/query"
	"imflow/internal/retrieval"
	"imflow/internal/sim"
	"imflow/internal/stats"
	"imflow/internal/storage"
	"imflow/internal/xrand"
)

func main() {
	expNum := flag.Int("exp", 4, "Table IV experiment (1-5)")
	allocName := flag.String("alloc", "dependent", "allocation: rda, dependent, orthogonal")
	typeName := flag.String("type", "arbitrary", "query type: range, arbitrary")
	loadNum := flag.Int("load", 3, "query load (1-3)")
	n := flag.Int("n", 16, "disks per site")
	queries := flag.Int("queries", 200, "stream length")
	interMs := flag.Float64("interarrival", 3, "mean inter-arrival gap (ms)")
	algos := flag.String("algos", "pr-binary,greedy", "comma-separated solvers to replay")
	seed := flag.Uint64("seed", 1, "workload seed")
	threads := flag.Int("threads", 2, "threads for pr-binary-parallel")
	flag.Parse()

	rng := xrand.New(*seed)
	exp, err := storage.ExperimentByNum(*expNum)
	if err != nil {
		fatalf("%v", err)
	}
	sys := exp.Build(*n, rng)
	g := grid.New(*n)

	var alloc *decluster.Allocation
	switch *allocName {
	case "rda":
		alloc = decluster.RDA(g, *n, sys.Sites, rng.Fork())
	case "dependent":
		alloc = decluster.Dependent(g, sys.Sites)
	case "orthogonal":
		alloc = decluster.Orthogonal(g)
	default:
		fatalf("unknown allocation %q", *allocName)
	}
	typ, err := cliutil.ParseType(*typeName)
	if err != nil {
		fatalf("%v", err)
	}
	load, err := cliutil.ParseLoad(*loadNum)
	if err != nil {
		fatalf("%v", err)
	}
	gen := query.NewGenerator(g, typ, load)

	// One shared stream so every scheduler faces identical arrivals.
	stream := make([]sim.Query, *queries)
	var clock cost.Micros
	srng := rng.Fork()
	for i := range stream {
		clock = cost.SatAdd(clock, cost.FromMillis(float64(1+srng.Intn(int(2**interMs)))))
		p := experiment.BuildProblem(sys, alloc, gen.Query(srng))
		stream[i] = sim.Query{Arrival: clock, Replicas: p.Replicas}
	}

	solvers := retrieval.Solvers(*threads)
	solvers["greedy"] = retrieval.NewGreedy()

	fmt.Printf("stream: %d queries over %d disks (exp %d, %s, %s, load %d)\n\n",
		*queries, sys.NumDisks(), *expNum, *allocName, *typeName, *loadNum)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "scheduler\tmean ms\tmedian ms\tp95 ms\tmax ms\tblocks site1\tblocks site2")
	for _, name := range strings.Split(*algos, ",") {
		name = strings.TrimSpace(name)
		s, ok := solvers[name]
		if !ok {
			fatalf("unknown solver %q", name)
		}
		simulator := sim.New(sys, sim.SolverScheduler{Solver: s})
		results, err := simulator.Run(append([]sim.Query(nil), stream...))
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		resp := make([]float64, len(results))
		for i, r := range results {
			resp[i] = r.ResponseTime.Millis()
		}
		var s1, s2 int64
		for j, tr := range simulator.Traces() {
			if j < *n {
				s1 += tr.Blocks
			} else {
				s2 += tr.Blocks
			}
		}
		sum := stats.Summarize(resp)
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%d\t%d\n",
			name, sum.Mean, sum.Median, sum.P95, sum.Max, s1, s2)
	}
	if err := w.Flush(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simulate: "+format+"\n", args...)
	os.Exit(1)
}
