// Command imflow-bench runs the reproducible steady-state retrieval
// benchmark: paper-scale experiment cells solved by every max-flow engine
// through the integrated algorithms, with per-op wall time, allocation
// counts, and elementary work counters, written as BENCH_retrieval.json.
//
// Usage:
//
//	imflow-bench                        # paper-scale grid, writes BENCH_retrieval.json
//	imflow-bench -smoke                 # one tiny cell (CI benchmark smoke)
//	imflow-bench -n 20,60 -queries 10   # custom sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"imflow/internal/bench"
)

func main() {
	smoke := flag.Bool("smoke", false, "run the small CI smoke configuration")
	out := flag.String("out", "BENCH_retrieval.json", "output JSON path (- for stdout)")
	ns := flag.String("n", "", "comma-separated grid sizes (default 20,60,100)")
	queries := flag.Int("queries", 0, "problems per cell (default 20)")
	repeats := flag.Int("repeats", 0, "measured passes per solver (default 2)")
	seed := flag.Uint64("seed", 0, "workload seed (default 42)")
	threads := flag.Int("threads", 0, "workers for the parallel engine (default 2)")
	expNum := flag.Int("exp", 0, "Table IV experiment number (default 2)")
	baselineMaxN := flag.Int("baseline-max-n", 0,
		"largest grid the quadratic reference engines (ek, rtf, scaling-ek) run on (default 32)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured suite to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the suite) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("%v", err)
		}
		//lint:ignore erruse best-effort diagnostic profile; a close error cannot affect the benchmark result
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	var o bench.RetrievalOptions
	if *smoke {
		o = bench.SmokeRetrievalOptions()
	}
	if *ns != "" {
		o.Ns = o.Ns[:0]
		for _, f := range strings.Split(*ns, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v <= 0 {
				fatalf("bad -n element %q", f)
			}
			o.Ns = append(o.Ns, v)
		}
	}
	if *queries > 0 {
		o.Queries = *queries
	}
	if *repeats > 0 {
		o.Repeats = *repeats
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	if *threads > 0 {
		o.Threads = *threads
	}
	if *expNum > 0 {
		o.ExpNum = *expNum
	}
	if *baselineMaxN > 0 {
		o.BaselineMaxN = *baselineMaxN
	}

	report, err := bench.RunRetrieval(o)
	if err != nil {
		fatalf("%v", err)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC() // flush the final allocations into the profile
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("memprofile: %v", err)
		}
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			fatalf("%v", err)
		}
	} else {
		if dir := filepath.Dir(*out); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatalf("%v", err)
			}
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d records)\n", *out, len(report.Records))
	}

	// Terminal summary: one line per record, engines side by side.
	for _, r := range report.Records {
		fmt.Fprintf(os.Stderr, "%-28s %-22s %10.0f ns/op %8.1f allocs/op %6.1f runs/op %8.1f incr/op %10.0f warm ns/op %5.2fx warm\n",
			r.Cell, r.Solver, r.NsPerOp, r.AllocsPerOp, r.MaxflowRuns, r.Increments, r.WarmNsPerOp, r.WarmSpeedup)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imflow-bench: "+format+"\n", args...)
	os.Exit(1)
}
