// Command imflow-lint is the repository's multichecker: it runs the
// custom analyzers that guard the two invariants everything else is
// built on — the float-free integer-microsecond core (microsfloat) and
// the sync/atomic access discipline of the lock-free parallel solver
// (atomicfield) — plus a curated `go vet` set.
//
// Usage:
//
//	go run ./cmd/imflow-lint [-novet] [-list] [packages...]
//
// With no package patterns it lints ./.... The exit status is non-zero
// if any analyzer reported a diagnostic or the vet pass failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"imflow/internal/analysis"
	"imflow/internal/analysis/atomicfield"
	"imflow/internal/analysis/microsfloat"
)

// analyzers is the multichecker's analyzer set.
var analyzers = []*analysis.Analyzer{
	microsfloat.Analyzer,
	atomicfield.Analyzer,
}

// vetAnalyzers is the curated go vet set run alongside the custom
// analyzers: the standard checks most relevant to a lock-free,
// integer-exact codebase.
var vetAnalyzers = []string{
	"atomic",      // non-atomic update of a sync/atomic value
	"bools",       // suspect boolean operations
	"copylocks",   // locks copied by value (sync.RWMutex in parallel.Solver)
	"loopclosure", // goroutine capture of loop variables
	"lostcancel",  // context cancel leaks
	"nilfunc",     // comparisons of functions to nil
	"printf",      // format-string mistakes in diagnostics
	"stdmethods",  // misdeclared well-known interface methods
	"unreachable", // dead code
	"unsafeptr",   // invalid unsafe.Pointer conversions
}

func main() {
	novet := flag.Bool("novet", false, "skip the curated go vet pass")
	list := flag.Bool("list", false, "print the analyzer set and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, name := range vetAnalyzers {
			fmt.Printf("%-12s (go vet)\n", name)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imflow-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imflow-lint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	failed := len(diags) > 0
	if !*novet {
		args := []string{"vet"}
		for _, name := range vetAnalyzers {
			args = append(args, "-"+name)
		}
		args = append(args, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
