// Command imflow-lint is the repository's multichecker: it runs the
// custom analyzers that guard the invariants everything else is built on
// — the float-free integer-microsecond core (microsfloat), saturating
// Micros arithmetic (satarith), the sync/atomic access discipline of the
// lock-free parallel solver (atomicfield), the mutex guard annotations of
// the serving layer (lockguard), and the zero-allocation hot paths
// (noalloc) — plus a curated `go vet` set.
//
// Usage:
//
//	go run ./cmd/imflow-lint [flags] [packages...]
//
// With no package patterns it lints ./.... Each analyzer has an
// enable/disable flag of the same name (-satarith=false skips satarith).
// -json writes the findings as a stably sorted JSON record array on
// stdout — the CI artifact and editor-integration format — instead of
// the human text form.
//
// Findings are silenced per line with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or immediately above) the flagged line. The reason is mandatory; a
// reasonless suppression is itself a finding. The exit status is
// non-zero only for findings (malformed suppressions included) or a
// failed vet pass — valid suppressions do not fail the run, and -json
// reports them with "suppressed": true for auditability.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"imflow/internal/analysis"
	"imflow/internal/analysis/atomicfield"
	"imflow/internal/analysis/lockguard"
	"imflow/internal/analysis/microsfloat"
	"imflow/internal/analysis/noalloc"
	"imflow/internal/analysis/satarith"
)

// roster is the full analyzer set, in documentation order.
var roster = []*analysis.Analyzer{
	microsfloat.Analyzer,
	satarith.Analyzer,
	atomicfield.Analyzer,
	lockguard.Analyzer,
	noalloc.Analyzer,
}

// vetAnalyzers is the curated go vet set run alongside the custom
// analyzers: the standard checks most relevant to a lock-free,
// integer-exact codebase.
var vetAnalyzers = []string{
	"atomic",      // non-atomic update of a sync/atomic value
	"bools",       // suspect boolean operations
	"copylocks",   // locks copied by value (sync.RWMutex in parallel.Solver)
	"loopclosure", // goroutine capture of loop variables
	"lostcancel",  // context cancel leaks
	"nilfunc",     // comparisons of functions to nil
	"printf",      // format-string mistakes in diagnostics
	"stdmethods",  // misdeclared well-known interface methods
	"unreachable", // dead code
	"unsafeptr",   // invalid unsafe.Pointer conversions
}

func main() {
	novet := flag.Bool("novet", false, "skip the curated go vet pass")
	list := flag.Bool("list", false, "print the analyzer set and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a stably sorted JSON record array on stdout")
	enabled := map[string]*bool{}
	for _, a := range roster {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer")
	}
	flag.Parse()
	if *list {
		for _, a := range roster {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, name := range vetAnalyzers {
			fmt.Printf("%-12s (go vet)\n", name)
		}
		return
	}
	var analyzers []*analysis.Analyzer
	for _, a := range roster {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imflow-lint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "imflow-lint:", err)
		os.Exit(2)
	}
	active, suppressed := analysis.FilterSuppressed(pkgs, diags)
	if *jsonOut {
		root, _ := os.Getwd()
		if err := analysis.WriteJSON(os.Stdout, analysis.Records(root, active, suppressed)); err != nil {
			fmt.Fprintln(os.Stderr, "imflow-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range active {
			fmt.Println(d)
		}
		if len(suppressed) > 0 {
			fmt.Fprintf(os.Stderr, "imflow-lint: %d finding(s) suppressed by %s comments\n", len(suppressed), analysis.SuppressPrefix)
		}
	}
	failed := len(active) > 0
	if !*novet {
		args := []string{"vet"}
		for _, name := range vetAnalyzers {
			args = append(args, "-"+name)
		}
		args = append(args, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stderr // keep stdout pure for -json consumers
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
