// Command imflow-lint is the repository's multichecker: it runs the
// custom analyzers that guard the invariants everything else is built on
// — the float-free integer-microsecond core (microsfloat), saturating
// Micros arithmetic (satarith, plus its flow-sensitive upgrade sattaint
// for Micros-derived int64s), the sync/atomic access discipline of the
// lock-free parallel solver (atomicfield), the mutex guard annotations of
// the serving layer (lockguard), the zero-allocation hot paths (noalloc,
// both per-function and transitively over the call graph), dropped-error
// detection (erruse), directive hygiene (directive), the interprocedural
// concurrency checks built on the module call graph (lockorder, ctxleak),
// and the determinism-reachability walk that statically guards the
// bit-identity paths (detpath) — plus a curated `go vet` set.
//
// Usage:
//
//	go run ./cmd/imflow-lint [flags] [packages...]
//
// With no package patterns it lints ./.... Each analyzer has an
// enable/disable flag of the same name (-satarith=false skips satarith;
// -noalloc controls both the per-function and the transitive pass).
// Per-package analysis is sharded across GOMAXPROCS workers; diagnostics
// are re-sorted into a total order, so the output is identical to a
// serial run. -v prints per-analyzer wall time to stderr.
// -json writes the findings as a stably sorted JSON record array on
// stdout — the CI artifact and editor-integration format — instead of
// the human text form.
//
// -baseline <file> turns the run into a regression gate: findings are
// diffed against the committed record stream (lint_baseline.json at the
// repository root) and only *new* findings fail the run, so the roster
// can grow without demanding a same-day cleanup of the backlog. Findings
// present in the baseline but absent now are listed as fixed; refresh
// the baseline with -accept (see `make lint-accept`), which rewrites the
// baseline file with the current findings and always exits 0.
//
// Findings are silenced per line with
//
//	//lint:ignore <analyzer> <reason>
//
// on (or immediately above) the flagged line. The reason is mandatory,
// and the analyzer name must be in the roster; a reasonless or typo'd
// suppression is itself a finding. The exit status is non-zero only for
// findings (malformed suppressions included; new-vs-baseline findings in
// baseline mode) or a failed vet pass — valid suppressions do not fail
// the run, and -json reports them with "suppressed": true for
// auditability.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"time"

	"imflow/internal/analysis"
	"imflow/internal/analysis/atomicfield"
	"imflow/internal/analysis/callgraph"
	"imflow/internal/analysis/ctxleak"
	"imflow/internal/analysis/detpath"
	"imflow/internal/analysis/directive"
	"imflow/internal/analysis/erruse"
	"imflow/internal/analysis/lockguard"
	"imflow/internal/analysis/lockorder"
	"imflow/internal/analysis/microsfloat"
	"imflow/internal/analysis/noalloc"
	"imflow/internal/analysis/satarith"
	"imflow/internal/analysis/sattaint"
)

// roster is the per-package analyzer set, in documentation order.
var roster = []*analysis.Analyzer{
	microsfloat.Analyzer,
	satarith.Analyzer,
	sattaint.Analyzer,
	atomicfield.Analyzer,
	lockguard.Analyzer,
	noalloc.Analyzer,
	erruse.Analyzer,
	directive.Analyzer,
}

// moduleRoster is the interprocedural set, run once over the call graph
// of everything loaded rather than package by package. noalloc.Transitive
// shares the "noalloc" name (and flag, and suppression grammar) with its
// per-package half.
var moduleRoster = []*callgraph.Analyzer{
	noalloc.Transitive,
	detpath.Analyzer,
	lockorder.Analyzer,
	ctxleak.Analyzer,
}

// vetAnalyzers is the curated go vet set run alongside the custom
// analyzers: the standard checks most relevant to a lock-free,
// integer-exact codebase.
var vetAnalyzers = []string{
	"atomic",      // non-atomic update of a sync/atomic value
	"bools",       // suspect boolean operations
	"copylocks",   // locks copied by value (sync.RWMutex in parallel.Solver)
	"loopclosure", // goroutine capture of loop variables
	"lostcancel",  // context cancel leaks
	"nilfunc",     // comparisons of functions to nil
	"printf",      // format-string mistakes in diagnostics
	"stdmethods",  // misdeclared well-known interface methods
	"unreachable", // dead code
	"unsafeptr",   // invalid unsafe.Pointer conversions
}

// knownNames is the set of analyzer names a //lint:ignore comment may
// legitimately reference; "suppress" covers findings about suppressions
// themselves.
func knownNames() map[string]bool {
	known := map[string]bool{"suppress": true}
	for _, a := range roster {
		known[a.Name] = true
	}
	for _, a := range moduleRoster {
		known[a.Name] = true
	}
	return known
}

func main() {
	novet := flag.Bool("novet", false, "skip the curated go vet pass")
	list := flag.Bool("list", false, "print the analyzer set and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a stably sorted JSON record array on stdout")
	baselinePath := flag.String("baseline", "", "diff findings against this baseline file; only new findings fail the run")
	verbose := flag.Bool("v", false, "print per-analyzer wall time to stderr")
	accept := flag.Bool("accept", false, "rewrite the -baseline file with the current findings and exit 0")
	enabled := map[string]*bool{}
	for _, a := range roster {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer")
	}
	for _, a := range moduleRoster {
		if _, dup := enabled[a.Name]; !dup {
			enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer")
		}
	}
	flag.Parse()
	if *list {
		for _, a := range roster {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range moduleRoster {
			fmt.Printf("%-12s %s (module-level)\n", a.Name, a.Doc)
		}
		for _, name := range vetAnalyzers {
			fmt.Printf("%-12s (go vet)\n", name)
		}
		return
	}
	if *accept && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "imflow-lint: -accept requires -baseline <file>")
		os.Exit(2)
	}
	var analyzers []*analysis.Analyzer
	for _, a := range roster {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	var moduleAnalyzers []*callgraph.Analyzer
	for _, a := range moduleRoster {
		if *enabled[a.Name] {
			moduleAnalyzers = append(moduleAnalyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fail(err)
	}
	diags, timings, err := analysis.RunParallel(analyzers, pkgs, runtime.GOMAXPROCS(0))
	if err != nil {
		fail(err)
	}
	if len(moduleAnalyzers) > 0 {
		graphStart := time.Now()
		graph, err := callgraph.Build(pkgs)
		if err != nil {
			fail(err)
		}
		timings["callgraph"] = time.Since(graphStart)
		// The module tier shares the graph, so it runs serially — but each
		// analyzer is timed on its own for the -v report. Names shared with
		// a per-package half (noalloc) accumulate into one entry.
		for _, a := range moduleAnalyzers {
			start := time.Now()
			moduleDiags, err := callgraph.Run([]*callgraph.Analyzer{a}, graph)
			if err != nil {
				fail(err)
			}
			timings[a.Name] += time.Since(start)
			diags = append(diags, moduleDiags...)
		}
		analysis.SortDiagnostics(diags)
	}
	if *verbose {
		names := make([]string, 0, len(timings))
		for name := range timings {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "imflow-lint: %-12s %v\n", name, timings[name].Round(time.Microsecond))
		}
	}
	active, suppressed := analysis.FilterSuppressed(pkgs, diags, knownNames())
	root, _ := os.Getwd()
	records := analysis.Records(root, active, suppressed)

	if *accept {
		f, err := os.Create(*baselinePath)
		if err != nil {
			fail(err)
		}
		if err := analysis.WriteJSON(f, records); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "imflow-lint: wrote %d record(s) to %s\n", len(records), *baselinePath)
		return
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, records); err != nil {
			fail(err)
		}
	}

	var failed bool
	if *baselinePath != "" {
		baseline, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fail(err)
		}
		newFindings, fixed := analysis.DiffBaseline(records, baseline)
		for _, r := range newFindings {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s (new since baseline)\n", r.File, r.Line, r.Col, r.Analyzer, r.Message)
		}
		if len(fixed) > 0 {
			fmt.Fprintf(os.Stderr, "imflow-lint: %d baseline finding(s) fixed — refresh with `make lint-accept`\n", len(fixed))
		}
		failed = len(newFindings) > 0
	} else {
		if !*jsonOut {
			for _, d := range active {
				fmt.Println(d)
			}
			if len(suppressed) > 0 {
				fmt.Fprintf(os.Stderr, "imflow-lint: %d finding(s) suppressed by %s comments\n", len(suppressed), analysis.SuppressPrefix)
			}
		}
		failed = len(active) > 0
	}
	if !*novet {
		args := []string{"vet"}
		for _, name := range vetAnalyzers {
			args = append(args, "-"+name)
		}
		args = append(args, patterns...)
		cmd := exec.Command("go", args...)
		cmd.Stdout = os.Stderr // keep stdout pure for -json consumers
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "imflow-lint:", err)
	os.Exit(2)
}
