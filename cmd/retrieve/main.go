// Command retrieve computes an optimal response time retrieval schedule
// for a single query described as JSON on stdin (or a file), using any of
// the repository's solvers.
//
// Input format:
//
//	{
//	  "disks": [
//	    {"service_ms": 6.1, "delay_ms": 2, "load_ms": 1},
//	    {"service_ms": 0.2, "delay_ms": 1, "load_ms": 0}
//	  ],
//	  "buckets": [[0, 1], [0], [1]]
//	}
//
// where disks[j] holds disk j's parameters and buckets[i] lists the disks
// storing a replica of bucket i. The output is a JSON schedule:
// the serving disk of every bucket, the per-disk block counts, and the
// optimal response time.
//
// Usage:
//
//	retrieve [-algo pr-binary] [-threads 2] [-in file.json] [-stats]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"imflow/internal/encoding"
	"imflow/internal/retrieval"
)

type output struct {
	Algorithm      string           `json:"algorithm"`
	ResponseTimeMs float64          `json:"response_time_ms"`
	Assignment     []int            `json:"assignment"`
	Counts         []int64          `json:"counts"`
	DecisionTimeMs float64          `json:"decision_time_ms"`
	Stats          *retrieval.Stats `json:"stats,omitempty"`
	Bottleneck     *bottleneckJSON  `json:"bottleneck,omitempty"`
}

type bottleneckJSON struct {
	Disks   []int `json:"disks"`
	Buckets []int `json:"buckets"`
}

func main() {
	algo := flag.String("algo", "pr-binary", "solver: ff-incremental, pr-incremental, pr-binary, pr-binary-blackbox, pr-binary-parallel, oracle")
	threads := flag.Int("threads", 2, "threads for pr-binary-parallel")
	in := flag.String("in", "-", "input file ('-' for stdin)")
	withStats := flag.Bool("stats", false, "include solver work counters in the output")
	explain := flag.Bool("explain", false, "include the bottleneck diagnosis (binding disks and buckets)")
	list := flag.Bool("list", false, "list available solvers and exit")
	flag.Parse()

	solvers := retrieval.Solvers(*threads)
	if *list {
		names := make([]string, 0, len(solvers))
		for n := range solvers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	solver, ok := solvers[*algo]
	if !ok {
		fatalf("unknown solver %q (use -list)", *algo)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	p, err := encoding.ReadProblem(r)
	if err != nil {
		fatalf("parsing input: %v", err)
	}

	start := time.Now()
	res, err := solver.Solve(p)
	elapsed := time.Since(start)
	if err != nil {
		fatalf("solving: %v", err)
	}
	out := output{
		Algorithm:      solver.Name(),
		ResponseTimeMs: res.Schedule.ResponseTime.Millis(),
		Assignment:     res.Schedule.Assignment,
		Counts:         res.Schedule.Counts,
		DecisionTimeMs: float64(elapsed.Microseconds()) / 1000,
	}
	if *withStats {
		out.Stats = &res.Stats
	}
	if *explain {
		b, _, err := retrieval.ExplainBottleneck(p)
		if err != nil {
			fatalf("explaining: %v", err)
		}
		out.Bottleneck = &bottleneckJSON{Disks: b.Disks, Buckets: b.Buckets}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "retrieve: "+format+"\n", args...)
	os.Exit(1)
}
