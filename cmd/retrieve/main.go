// Command retrieve computes optimal response time retrieval schedules for
// queries described as JSON on stdin (or a file), using any of the
// repository's solvers.
//
// Input format — one or more concatenated JSON documents (so both a single
// query and a JSON-lines batch work):
//
//	{
//	  "disks": [
//	    {"service_ms": 6.1, "delay_ms": 2, "load_ms": 1},
//	    {"service_ms": 0.2, "delay_ms": 1, "load_ms": 0}
//	  ],
//	  "buckets": [[0, 1], [0], [1]]
//	}
//
// where disks[j] holds disk j's parameters and buckets[i] lists the disks
// storing a replica of bucket i. The output is one JSON schedule per input
// document: the serving disk of every bucket, the per-disk block counts,
// and the optimal response time. When the chosen solver supports the
// zero-reallocation path (retrieval.ReusableSolver), the whole batch is
// solved through one reused solver state and result — the same hot path
// the serving layer runs.
//
// Usage:
//
//	retrieve [-algo pr-binary] [-threads 2] [-in file.json] [-stats]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"imflow/internal/encoding"
	"imflow/internal/retrieval"
)

type output struct {
	Query          int              `json:"query"`
	Algorithm      string           `json:"algorithm"`
	ResponseTimeMs float64          `json:"response_time_ms"`
	Assignment     []int            `json:"assignment"`
	Counts         []int64          `json:"counts"`
	DecisionTimeMs float64          `json:"decision_time_ms"`
	Stats          *retrieval.Stats `json:"stats,omitempty"`
	Bottleneck     *bottleneckJSON  `json:"bottleneck,omitempty"`
}

type bottleneckJSON struct {
	Disks   []int `json:"disks"`
	Buckets []int `json:"buckets"`
}

func main() {
	algo := flag.String("algo", "pr-binary", "solver: ff-incremental, pr-incremental, pr-binary, pr-binary-blackbox, pr-binary-parallel, oracle")
	threads := flag.Int("threads", 0, "threads for pr-binary-parallel (<= 0: GOMAXPROCS)")
	in := flag.String("in", "-", "input file ('-' for stdin)")
	withStats := flag.Bool("stats", false, "include solver work counters in the output")
	explain := flag.Bool("explain", false, "include the bottleneck diagnosis (binding disks and buckets)")
	list := flag.Bool("list", false, "list available solvers and exit")
	flag.Parse()

	solvers := retrieval.Solvers(*threads)
	if *list {
		names := make([]string, 0, len(solvers))
		for n := range solvers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	solver, ok := solvers[*algo]
	if !ok {
		fatalf("unknown solver %q (use -list)", *algo)
	}
	// Across a batch, a reusable solver keeps its network, engine, and
	// result arrays warm: everything after the first query runs the
	// steady-state zero-reallocation path.
	reusable, _ := solver.(retrieval.ReusableSolver)
	reused := &retrieval.Result{}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		//lint:ignore erruse close of a file only ever read; there is nothing buffered to lose
		defer f.Close()
		r = f
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	dec := encoding.NewProblemDecoder(r)
	for qi := 0; ; qi++ {
		p, err := dec.Next()
		if err == io.EOF {
			if qi == 0 {
				fatalf("empty input")
			}
			return
		}
		if err != nil {
			fatalf("parsing query %d: %v", qi, err)
		}

		var res *retrieval.Result
		start := time.Now()
		if reusable != nil {
			err = reusable.SolveInto(p, reused)
			res = reused
		} else {
			res, err = solver.Solve(p)
		}
		elapsed := time.Since(start)
		if err != nil {
			fatalf("solving query %d: %v", qi, err)
		}
		out := output{
			Query:          qi,
			Algorithm:      solver.Name(),
			ResponseTimeMs: res.Schedule.ResponseTime.Millis(),
			Assignment:     res.Schedule.Assignment,
			Counts:         res.Schedule.Counts,
			DecisionTimeMs: float64(elapsed.Microseconds()) / 1000,
		}
		if *withStats {
			out.Stats = &res.Stats
		}
		if *explain {
			b, _, err := retrieval.ExplainBottleneck(p)
			if err != nil {
				fatalf("explaining query %d: %v", qi, err)
			}
			out.Bottleneck = &bottleneckJSON{Disks: b.Disks, Buckets: b.Buckets}
		}
		if err := enc.Encode(out); err != nil {
			fatalf("%v", err)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "retrieve: "+format+"\n", args...)
	os.Exit(1)
}
