// Command imflow-serve runs the HTTP retrieval front end over one
// paper-scale cell: POST /v1/query and /v1/submit serve bucket or raw
// replica queries through the sharded serving layer with deadline
// propagation, per-client rate limiting, overload shedding, and
// per-shard circuit breakers; GET /healthz, /readyz, and /metrics expose
// liveness, drain state, and the degradation counters. SIGINT/SIGTERM
// trigger a graceful drain bounded by -drain-timeout.
//
// Usage:
//
//	imflow-serve                                   # :8080, N=20 cell, 4 shards
//	imflow-serve -addr :9000 -n 60 -workers 8
//	imflow-serve -policy drop-latest-deadline -shed-queue 128 -rate 500
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imflow/internal/experiment"
	"imflow/internal/httpd"
	"imflow/internal/query"
	"imflow/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	n := flag.Int("n", 20, "grid size (N x N buckets per site)")
	expNum := flag.Int("exp", 2, "Table IV experiment number")
	workers := flag.Int("workers", 4, "serving-layer shards")
	queueDepth := flag.Int("queue", 0, "per-shard admission queue bound (default 64)")
	batch := flag.Int("batch", 0, "max queries coalesced per worker wakeup (default 16)")
	policyName := flag.String("policy", "reject-new", "shed policy: reject-new or drop-latest-deadline")
	maxInflight := flag.Int("max-inflight", 0, "admission window (default 256)")
	shedQueue := flag.Int("shed-queue", 0, "summed queue depth that triggers shedding (0 disables)")
	shedP99 := flag.Duration("shed-p99", 0, "served p99 that triggers shedding (0 disables)")
	rate := flag.Float64("rate", 0, "per-client token-bucket rate in queries/sec (batch items each cost a token; 0 disables)")
	burst := flag.Float64("burst", 0, "per-client token-bucket burst (default 1)")
	defaultDeadline := flag.Duration("default-deadline", 0, "deadline for requests that carry none (0 means none)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown budget")
	seed := flag.Uint64("seed", 0, "cell build seed (default 42)")
	flag.Parse()

	if *seed == 0 {
		*seed = 42
	}
	policy, err := httpd.ParsePolicy(*policyName)
	if err != nil {
		fatalf("%v", err)
	}
	cfg := experiment.Config{
		ExpNum:  *expNum,
		Alloc:   experiment.RDA,
		Type:    query.Range,
		Load:    query.Load2,
		N:       *n,
		Queries: 1,
		Seed:    *seed,
	}
	inst, err := cfg.Build()
	if err != nil {
		fatalf("%v", err)
	}
	s, err := httpd.New(inst.System, inst.Alloc, httpd.Options{
		Serve:           serve.Options{Workers: *workers, QueueDepth: *queueDepth, Batch: *batch},
		MaxInflight:     *maxInflight,
		Policy:          policy,
		ShedQueueDepth:  *shedQueue,
		ShedP99:         *shedP99,
		RatePerSec:      *rate,
		RateBurst:       *burst,
		DefaultDeadline: *defaultDeadline,
		Seed:            *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	hs := &http.Server{Handler: s}
	fmt.Fprintf(os.Stderr, "imflow-serve: cell %s (%d buckets, %d disks), %d shards, policy %s, listening on %s\n",
		cfg, inst.Alloc.Grid.Buckets(), inst.System.NumDisks(), *workers, policy, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	//lint:ignore ctxleak serveErr is buffered (cap 1) with exactly one sender; the send can never block
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fatalf("%v", err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintf(os.Stderr, "imflow-serve: draining (budget %v)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "imflow-serve: listener shutdown: %v\n", err)
	}
	if err := s.Shutdown(dctx); err != nil {
		fatalf("drain: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("%v", err)
	}
	fmt.Fprintln(os.Stderr, "imflow-serve: drained cleanly")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imflow-serve: "+format+"\n", args...)
	os.Exit(1)
}
