// Command imflow-load drives an imflow-serve front end with a synthetic
// workload and prints the client-side accounting as JSON. It discovers
// the served grid from /metrics, so pointing it at a server is enough —
// no cell configuration needs to be repeated.
//
// Three modes:
//
//	closed   Concurrency workers in lockstep (capacity probe)
//	open     Poisson arrivals at -qps, detached from response times
//	flash    open-loop base rate with periodic crowd bursts
//
// Usage:
//
//	imflow-load -url http://localhost:8080 -mode closed -duration 5s
//	imflow-load -url http://localhost:8080 -mode open -qps 800 -duration 10s
//	imflow-load -url http://localhost:8080 -mode flash -qps 200 -burst-qps 2000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"imflow/internal/bench"
	"imflow/internal/httpd"
	"imflow/internal/xrand"
)

func main() {
	url := flag.String("url", "", "base URL of the imflow-serve front end (required)")
	mode := flag.String("mode", "closed", "load shape: closed, open, or flash")
	duration := flag.Duration("duration", 5*time.Second, "pass length")
	qps := flag.Float64("qps", 0, "open/flash base arrival rate")
	burstQPS := flag.Float64("burst-qps", 0, "flash crowd rate (default 4x -qps)")
	burstEvery := flag.Duration("burst-every", 0, "flash period (default duration/4)")
	burstLen := flag.Duration("burst-len", 0, "flash crowd window (default period/2)")
	concurrency := flag.Int("concurrency", 0, "closed-loop workers (default 16)")
	outstanding := flag.Int("outstanding", 0, "open-loop in-flight bound (default 256)")
	deadlineMs := flag.Int64("deadline-ms", 250, "per-query deadline (0 omits it)")
	pool := flag.Int("queries", 256, "distinct request bodies to cycle through")
	maxBuckets := flag.Int("max-buckets", 4, "buckets per generated query (1..max)")
	seed := flag.Uint64("seed", 1, "workload seed")
	clientID := flag.String("client-id", "", "X-Client-ID header value")
	out := flag.String("out", "-", "result JSON path (- for stdout)")
	flag.Parse()

	if *url == "" {
		fatalf("-url is required")
	}
	buckets := discoverBuckets(*url)
	bodies := makeBodies(buckets, *pool, *maxBuckets, *deadlineMs, *seed)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	res, err := bench.RunLoad(ctx, bench.LoadOptions{
		URL:            *url,
		Bodies:         bodies,
		Mode:           *mode,
		QPS:            *qps,
		BurstQPS:       *burstQPS,
		BurstEvery:     *burstEvery,
		BurstLen:       *burstLen,
		Duration:       *duration,
		Concurrency:    *concurrency,
		MaxOutstanding: *outstanding,
		Seed:           *seed,
		ClientID:       *clientID,
	})
	if err != nil {
		fatalf("%v", err)
	}

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(blob); err != nil {
			fatalf("%v", err)
		}
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr,
		"imflow-load: %s %.1fs — offered %d sent %d served %d (%.0f/s) 429 %d 503 %d 504 %d unanswered %d overrun %d p50 %.0fus p99 %.0fus\n",
		res.Mode, time.Duration(res.ElapsedNs).Seconds(), res.Offered, res.Sent, res.Served, res.AchievedQPS,
		res.Limited429, res.Unavailable503, res.Deadline504, res.Unanswered, res.Overrun,
		res.P50LatencyUs, res.P99LatencyUs)
	if res.Unanswered > 0 {
		os.Exit(2) // dropped connections: the server degraded un-gracefully
	}
}

// discoverBuckets asks the server's /metrics for the grid it fronts.
func discoverBuckets(url string) int {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		fatalf("discovering the served grid: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		fatalf("discovering the served grid: /metrics answered %s", resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("discovering the served grid: %v", err)
	}
	var st httpd.Stats
	if err := json.Unmarshal(blob, &st); err != nil {
		fatalf("decoding /metrics: %v", err)
	}
	if st.Buckets <= 0 {
		fatalf("server fronts no bucket allocation (buckets=%d); generate raw replica queries another way", st.Buckets)
	}
	return st.Buckets
}

// makeBodies pre-marshals the request pool: random bucket sets sized
// 1..maxBuckets, each carrying the configured deadline.
func makeBodies(buckets, pool, maxBuckets int, deadlineMs int64, seed uint64) [][]byte {
	if pool <= 0 {
		pool = 1
	}
	if maxBuckets <= 0 {
		maxBuckets = 1
	}
	rng := xrand.New(seed)
	bodies := make([][]byte, pool)
	for i := range bodies {
		qr := httpd.QueryRequest{DeadlineMs: deadlineMs}
		for j := 1 + rng.Intn(maxBuckets); j > 0; j-- {
			qr.Buckets = append(qr.Buckets, rng.Intn(buckets))
		}
		blob, err := json.Marshal(qr)
		if err != nil {
			fatalf("%v", err)
		}
		bodies[i] = blob
	}
	return bodies
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imflow-load: "+format+"\n", args...)
	os.Exit(1)
}
