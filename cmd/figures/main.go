// Command figures regenerates the paper's evaluation figures (5-10) with
// this repository's implementations. Output is an ASCII rendering on
// stdout by default, or gnuplot-friendly TSV with -tsv.
//
// Usage:
//
//	figures -fig 9                        # one figure, laptop scale
//	figures -all -queries 1000 -ns 10,20,30,40,50,60,70,80,90,100
//	figures -fig 10 -threads 2 -tsv > fig10.tsv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"imflow/internal/bench"
	"imflow/internal/cliutil"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (5-10)")
	all := flag.Bool("all", false, "regenerate every figure")
	queries := flag.Int("queries", 100, "queries per data point (paper: 1000)")
	nsFlag := flag.String("ns", "10,20,30,40,50", "comma-separated disks-per-site sweep (paper: 10..100)")
	seed := flag.Uint64("seed", 1, "workload seed")
	threads := flag.Int("threads", 2, "threads for the parallel solver (figure 10)")
	tsv := flag.Bool("tsv", false, "emit TSV instead of ASCII tables")
	svgDir := flag.String("svg", "", "also write one <dir>/figN.svg chart per figure")
	workFlag := flag.Bool("work", false, "with -fig 9: plot deterministic push-operation ratios instead of wall clock")
	flag.Parse()

	ns, err := cliutil.ParseNs(*nsFlag)
	if err != nil {
		fatalf("%v", err)
	}
	o := bench.Options{Ns: ns, Queries: *queries, Seed: *seed, Threads: *threads}

	work := false
	var ids []int
	switch {
	case *all:
		ids = []int{5, 6, 7, 8, 9, 10}
	case *fig != 0:
		ids = []int{*fig}
		work = *workFlag
	default:
		fatalf("pass -fig N (5-10) or -all")
	}
	for _, id := range ids {
		var f *bench.Figure
		var err error
		if work && id == 9 {
			f, err = bench.Fig9Work(o)
		} else {
			f, err = bench.ByID(id, o)
		}
		if err != nil {
			fatalf("figure %d: %v", id, err)
		}
		if *tsv {
			fmt.Print(f.TSV())
		} else {
			fmt.Println(f.Render())
		}
		if *svgDir != "" {
			path := filepath.Join(*svgDir, fmt.Sprintf("fig%d.svg", id))
			if err := os.WriteFile(path, []byte(f.SVG()), 0o644); err != nil {
				fatalf("writing %s: %v", path, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
	os.Exit(1)
}
