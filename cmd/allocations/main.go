// Command allocations inspects the replicated declustering schemes: it
// renders an allocation the way the paper's Figure 2 does (one grid per
// copy, side by side) and reports its retrieval quality — the additive
// error distribution over range queries, computed with the exact
// capacity-matching analyzer.
//
// Usage:
//
//	allocations -n 7                       # render all three schemes at N=7
//	allocations -n 32 -scheme orthogonal   # quality report only (big grids)
//	allocations -n 16 -sample 500          # sampled corners instead of all shapes
package main

import (
	"flag"
	"fmt"
	"os"

	"imflow/internal/cliutil"
	"imflow/internal/decluster"
	"imflow/internal/grid"
	"imflow/internal/xrand"
)

func main() {
	n := flag.Int("n", 7, "grid side / disks per copy")
	schemeName := flag.String("scheme", "", "rda, dependent, or orthogonal (default: all)")
	sample := flag.Int("sample", 0, "sample this many random queries instead of all shapes")
	seed := flag.Uint64("seed", 1, "seed for RDA and sampling")
	render := flag.Bool("render", true, "render the allocation grids (suppressed for N > 20)")
	flag.Parse()

	schemes := []string{"rda", "dependent", "orthogonal"}
	if *schemeName != "" {
		if _, err := cliutil.ParseAlloc(*schemeName); err != nil {
			fatalf("%v", err)
		}
		schemes = []string{*schemeName}
	}
	g := grid.New(*n)
	rng := xrand.New(*seed)
	for _, name := range schemes {
		var a *decluster.Allocation
		switch name {
		case "rda":
			a = decluster.RDA(g, *n, 2, rng.Fork())
		case "dependent":
			a = decluster.Dependent(g, 2)
		case "orthogonal":
			a = decluster.Orthogonal(g)
		}
		if *render && *n <= 20 {
			fmt.Println(a.RenderSideBySide())
		} else {
			fmt.Printf("%s allocation, %dx%d grid, %d disks per copy\n", a.Scheme, *n, *n, a.Disks)
		}
		rep := a.AdditiveError(*sample, rng.Fork())
		fmt.Printf("  pairs unique: %v\n", a.PairsUnique())
		fmt.Printf("  range-query quality: %s\n", rep)
		fmt.Print("  additive-error histogram:")
		for e := 0; e <= rep.MaxError; e++ {
			fmt.Printf("  %d:%d", e, rep.Histogram[e])
		}
		fmt.Print("\n\n")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "allocations: "+format+"\n", args...)
	os.Exit(1)
}
