// Command imflow-bench-diff gates benchmark regressions: it compares
// freshly generated BENCH_retrieval.json / BENCH_serve.json documents
// against the committed baselines and exits non-zero when a sequential
// engine got >25% slower, any sequential engine's steady-state allocs/op
// regressed, a serving configuration lost throughput, or the server's
// deterministic mode stopped matching sequential replay. Entries present
// in only one of the two documents (new modes or cells, narrower smoke
// sweeps) are printed as INFO lines and never fail the gate.
//
// Usage:
//
//	imflow-bench-diff -old BENCH_retrieval.json -new fresh.json
//	imflow-bench-diff -old-serve BENCH_serve.json -new-serve fresh-serve.json
//	imflow-bench-diff -old-fault BENCH_fault.json -new-fault fresh-fault.json
//	imflow-bench-diff -old-http BENCH_http.json -new-http fresh-http.json
//	imflow-bench-diff -allocs-only ...   # CI smoke: machine-independent gates only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"imflow/internal/bench"
)

func main() {
	oldRet := flag.String("old", "", "committed BENCH_retrieval.json baseline")
	newRet := flag.String("new", "", "freshly generated BENCH_retrieval.json")
	oldServe := flag.String("old-serve", "", "committed BENCH_serve.json baseline")
	newServe := flag.String("new-serve", "", "freshly generated BENCH_serve.json")
	oldFault := flag.String("old-fault", "", "committed BENCH_fault.json baseline")
	newFault := flag.String("new-fault", "", "freshly generated BENCH_fault.json")
	oldHTTP := flag.String("old-http", "", "committed BENCH_http.json baseline")
	newHTTP := flag.String("new-http", "", "freshly generated BENCH_http.json")
	maxRatio := flag.Float64("max-ratio", 1.25, "tolerated timing regression ratio")
	allocsOnly := flag.Bool("allocs-only", false,
		"skip wall-clock gates (for CI, where the baseline's hardware differs)")
	flag.Parse()

	opt := bench.DiffOptions{MaxRatio: *maxRatio, TimingChecks: !*allocsOnly}
	var violations, infos []string
	checked := 0

	if *newRet != "" {
		if *oldRet == "" {
			fatalf("-new requires -old")
		}
		var oldR, newR bench.RetrievalReport
		readJSON(*oldRet, &oldR)
		readJSON(*newRet, &newR)
		v, i := bench.DiffRetrieval(&oldR, &newR, opt)
		violations, infos = append(violations, v...), append(infos, i...)
		checked++
	}
	if *newServe != "" {
		if *oldServe == "" {
			fatalf("-new-serve requires -old-serve")
		}
		var oldS, newS bench.ServeReport
		readJSON(*oldServe, &oldS)
		readJSON(*newServe, &newS)
		v, i := bench.DiffServe(&oldS, &newS, opt)
		violations, infos = append(violations, v...), append(infos, i...)
		checked++
	}
	if *newFault != "" {
		if *oldFault == "" {
			fatalf("-new-fault requires -old-fault")
		}
		var oldF, newF bench.FaultReport
		readJSON(*oldFault, &oldF)
		readJSON(*newFault, &newF)
		v, i := bench.DiffFault(&oldF, &newF, opt)
		violations, infos = append(violations, v...), append(infos, i...)
		checked++
	}
	if *newHTTP != "" {
		if *oldHTTP == "" {
			fatalf("-new-http requires -old-http")
		}
		var oldH, newH bench.HTTPReport
		readJSON(*oldHTTP, &oldH)
		readJSON(*newHTTP, &newH)
		v, i := bench.DiffHTTP(&oldH, &newH, opt)
		violations, infos = append(violations, v...), append(infos, i...)
		checked++
	}
	if checked == 0 {
		fatalf("nothing to diff: pass -old/-new, -old-serve/-new-serve, -old-fault/-new-fault, and/or -old-http/-new-http")
	}

	// Entries present in only one document (new modes, narrower smoke
	// sweeps, renamed cells) are reported but never fail the gate.
	for _, i := range infos {
		fmt.Fprintf(os.Stderr, "INFO: %s\n", i)
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "REGRESSION: %s\n", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "imflow-bench-diff: %d report(s) clean\n", checked)
}

func readJSON(path string, into any) {
	blob, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := json.Unmarshal(blob, into); err != nil {
		fatalf("%s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "imflow-bench-diff: "+format+"\n", args...)
	os.Exit(1)
}
