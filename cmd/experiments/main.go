// Command experiments lists and runs the Table IV experiment
// configurations: for a chosen experiment, allocation, query type, load
// and N it times every solver on the same query batch and prints a
// comparison table, with per-solver work counters.
//
// Usage:
//
//	experiments -list
//	experiments -exp 5 -alloc orthogonal -type arbitrary -load 1 -n 30 -queries 200
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"imflow/internal/bench"
	"imflow/internal/cliutil"
	"imflow/internal/experiment"
	"imflow/internal/retrieval"
	"imflow/internal/stats"
	"imflow/internal/storage"
	"imflow/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "print Table IV and exit")
	expNum := flag.Int("exp", 5, "experiment number (1-5)")
	allocName := flag.String("alloc", "orthogonal", "allocation: rda, dependent, orthogonal")
	typeName := flag.String("type", "arbitrary", "query type: range, arbitrary")
	loadNum := flag.Int("load", 1, "query load (1-3)")
	n := flag.Int("n", 20, "disks per site (grid is N x N)")
	queries := flag.Int("queries", 100, "number of queries")
	seed := flag.Uint64("seed", 1, "workload seed")
	threads := flag.Int("threads", 2, "threads for the parallel solver")
	dump := flag.String("dump", "", "archive the generated workload (system + queries) to this JSON trace file")
	replay := flag.String("replay", "", "time solvers on an archived trace instead of generating a workload")
	flag.Parse()

	if *list {
		printTableIV()
		return
	}

	var problems []*retrieval.Problem
	if *replay != "" {
		tr, err := trace.LoadFile(*replay)
		if err != nil {
			fatalf("%v", err)
		}
		problems, err = tr.Retrieve()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("replaying trace %s: exp %d, %s, %s, %s, N=%d, %d queries\n\n",
			*replay, tr.Meta.Experiment, tr.Meta.Allocation, tr.Meta.QueryType,
			tr.Meta.Load, tr.Meta.N, len(problems))
	} else {
		alloc, err := cliutil.ParseAlloc(*allocName)
		if err != nil {
			fatalf("%v", err)
		}
		typ, err := cliutil.ParseType(*typeName)
		if err != nil {
			fatalf("%v", err)
		}
		load, err := cliutil.ParseLoad(*loadNum)
		if err != nil {
			fatalf("%v", err)
		}
		cfg := experiment.Config{
			ExpNum:  *expNum,
			Alloc:   alloc,
			Type:    typ,
			Load:    load,
			N:       *n,
			Queries: *queries,
			Seed:    *seed,
		}
		inst, err := cfg.Build()
		if err != nil {
			fatalf("%v", err)
		}
		if *dump != "" {
			if err := trace.FromInstance(inst).SaveFile(*dump); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "archived workload to %s\n", *dump)
		}
		problems = inst.Problems
		fmt.Printf("cell %s: %d queries, %d disks across %d sites\n\n",
			cfg, len(inst.Problems), inst.System.NumDisks(), inst.System.Sites)
	}

	solvers := []retrieval.Solver{
		retrieval.NewFFIncremental(),
		retrieval.NewPRIncremental(),
		retrieval.NewPRBinaryBlackBox(),
		retrieval.NewPRBinary(),
		retrieval.NewPRBinaryParallel(*threads),
	}
	type row struct {
		name  string
		avgMs float64
		resp  stats.Summary
	}
	var rows []row
	var baseline []float64
	for _, s := range solvers {
		m, err := bench.MeasureSolver(s, problems)
		if err != nil {
			fatalf("%s: %v", s.Name(), err)
		}
		resp := make([]float64, len(m.Responses))
		for i, r := range m.Responses {
			resp[i] = r.Millis()
		}
		if baseline == nil {
			baseline = resp
		} else {
			for i := range resp {
				if resp[i] != baseline[i] {
					fatalf("%s disagrees with %s on query %d (%.3f vs %.3f ms)",
						s.Name(), solvers[0].Name(), i, resp[i], baseline[i])
				}
			}
		}
		rows = append(rows, row{s.Name(), m.AvgMs(), stats.Summarize(resp)})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].avgMs < rows[j].avgMs })

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "solver\tavg decision ms/query\tvs fastest")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.4f\t%.2fx\n", r.name, r.avgMs, r.avgMs/rows[0].avgMs)
	}
	if err := w.Flush(); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("\noptimal response times (ms, identical for all solvers): %s\n", rows[0].resp)
}

func printTableIV() {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "exp\tsites\tsite\tdisks\tdelays\tloads")
	for _, e := range storage.Experiments {
		for si, s := range e.Sites {
			if si == 0 {
				fmt.Fprintf(w, "%d\t%d", e.Num, len(e.Sites))
			} else {
				fmt.Fprint(w, "\t")
			}
			fmt.Fprintf(w, "\t%d\t%s\t%s\t%s\n", si+1, s.Group, s.Delay, s.Load)
		}
	}
	if err := w.Flush(); err != nil {
		fatalf("%v", err)
	}
	fmt.Println("\ndisk catalog (Table III):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "producer\tmodel\ttype\trpm\taccess")
	for _, d := range storage.Catalog {
		rpm := "-"
		if d.RPM > 0 {
			rpm = fmt.Sprintf("%d", d.RPM)
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\n", d.Producer, d.Model, d.Type, rpm, d.Access)
	}
	if err := w.Flush(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
