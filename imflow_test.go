package imflow_test

import (
	"testing"

	"imflow"
)

// TestFacadeQuickstart exercises the package-level API end to end — the
// doc-comment example must actually work.
func TestFacadeQuickstart(t *testing.T) {
	p := &imflow.Problem{
		Disks: []imflow.DiskParams{
			{Service: imflow.FromMillis(6.1)},
			{Service: imflow.FromMillis(0.2), Delay: imflow.FromMillis(1)},
		},
		Replicas: [][]int{{0, 1}, {0}, {1}},
	}
	res, err := imflow.NewPRBinary().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateSchedule(res.Schedule); err != nil {
		t.Fatal(err)
	}
	// Bucket 1 is only on disk 0 (6.1 ms); buckets 0 and 2 fit on disk 1.
	if want := imflow.FromMillis(6.1); res.Schedule.ResponseTime != want {
		t.Fatalf("response %v, want %v", res.Schedule.ResponseTime, want)
	}
}

// TestFacadeSolversAgree runs every named solver through the facade on one
// instance and checks they agree (greedy may exceed the optimum but never
// beat it).
func TestFacadeSolversAgree(t *testing.T) {
	p := &imflow.Problem{
		Disks: []imflow.DiskParams{
			{Service: imflow.FromMillis(8.3), Delay: imflow.FromMillis(2), Load: imflow.FromMillis(1)},
			{Service: imflow.FromMillis(6.1), Delay: imflow.FromMillis(1)},
			{Service: imflow.FromMillis(13.2), Delay: imflow.FromMillis(1)},
		},
		Replicas: [][]int{{0, 1}, {0, 2}, {1, 2}, {0, 1}, {1, 2}},
	}
	want, err := imflow.NewOracle().Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range imflow.Solvers(2) {
		res, err := s.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "greedy" {
			if res.Schedule.ResponseTime < want.Schedule.ResponseTime {
				t.Fatalf("greedy beat the optimum: %v < %v",
					res.Schedule.ResponseTime, want.Schedule.ResponseTime)
			}
			continue
		}
		if res.Schedule.ResponseTime != want.Schedule.ResponseTime {
			t.Fatalf("%s: response %v, oracle %v", name, res.Schedule.ResponseTime, want.Schedule.ResponseTime)
		}
	}
}
